"""Tests for metrics, analyses and table rendering."""

import numpy as np
import pytest

from repro.eval import (
    ErrorReport,
    closest_and_farthest,
    embedding_distances,
    evaluate,
    evaluate_under_thresholds,
    format_table,
    mae,
    prediction_curve,
    rapid_variation_score,
    rmse,
)


class TestMetrics:
    def test_mae_value(self):
        assert mae(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == 2.0

    def test_rmse_value(self):
        assert rmse(np.array([3.0, 4.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        predictions = rng.normal(size=100)
        targets = rng.normal(size=100)
        assert rmse(predictions, targets) >= mae(predictions, targets)

    def test_perfect_prediction(self):
        y = np.arange(5.0)
        report = evaluate(y, y)
        assert report.mae == 0.0
        assert report.rmse == 0.0
        assert report.n_items == 5

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mae(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            evaluate(np.ones(0), np.ones(0))

    def test_as_row(self):
        report = ErrorReport(mae=1.0, rmse=2.0, n_items=10)
        assert report.as_row() == (1.0, 2.0)


class TestThresholdEvaluation:
    def test_subset_by_true_gap(self):
        targets = np.array([0.0, 5.0, 50.0])
        predictions = np.array([1.0, 5.0, 10.0])
        reports = evaluate_under_thresholds(predictions, targets, [10.0])
        # Only the first two items have gap <= 10.
        assert reports[10.0].n_items == 2
        assert reports[10.0].mae == pytest.approx(0.5)

    def test_monotone_item_counts(self):
        rng = np.random.default_rng(1)
        targets = rng.exponential(5.0, 500)
        predictions = targets + rng.normal(0, 1, 500)
        reports = evaluate_under_thresholds(predictions, targets, [1, 10, 100])
        counts = [reports[t].n_items for t in (1, 10, 100)]
        assert counts == sorted(counts)

    def test_empty_subset_is_nan(self):
        reports = evaluate_under_thresholds(
            np.array([1.0]), np.array([5.0]), [1.0]
        )
        assert np.isnan(reports[1.0].mae)
        assert reports[1.0].n_items == 0


class TestEmbeddingAnalysis:
    def test_distances_match_norms(self):
        w = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 0.0]])
        d = embedding_distances(w)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[0, 2] == pytest.approx(1.0)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-12)

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        d = embedding_distances(rng.normal(size=(10, 4)))
        np.testing.assert_allclose(d, d.T, atol=1e-9)

    def test_closest_and_farthest(self):
        w = np.array([[0.0], [1.0], [10.0]])
        d = embedding_distances(w)
        nearest, farthest = closest_and_farthest(d, 0)
        assert nearest == 1
        assert farthest == 2

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            embedding_distances(np.ones(5))


class TestPredictionCurve:
    def test_sorted_by_day_then_time(self):
        curve = prediction_curve(
            predictions=np.array([1.0, 2.0, 3.0]),
            targets=np.array([1.0, 2.0, 3.0]),
            area_ids=np.array([0, 0, 0]),
            day_ids=np.array([1, 0, 0]),
            time_ids=np.array([10, 30, 20]),
            area_id=0,
        )
        assert [(d, t) for d, t, _, _ in curve] == [(0, 20), (0, 30), (1, 10)]

    def test_filters_by_area(self):
        curve = prediction_curve(
            predictions=np.zeros(4),
            targets=np.zeros(4),
            area_ids=np.array([0, 1, 0, 1]),
            day_ids=np.zeros(4, dtype=int),
            time_ids=np.arange(4),
            area_id=1,
        )
        assert len(curve) == 2

    def test_rapid_variation_score(self):
        flat = [(0, t, 1.0, 0.0) for t in range(5)]
        spiky = [(0, t, float(t % 2) * 10, 0.0) for t in range(5)]
        assert rapid_variation_score(spiky) > rapid_variation_score(flat)
        assert rapid_variation_score([(0, 0, 1.0, 1.0)]) == 0.0


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table(
            ["Model", "MAE"], [["GBDT", 3.72], ["DeepSD", 3.30]], title="Table II"
        )
        assert "Table II" in out
        assert "GBDT" in out
        assert "3.30" in out

    def test_alignment(self):
        out = format_table(["A", "B"], [["x", 1.0]])
        lines = out.splitlines()
        assert len(lines[0]) == len(lines[1])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["A"], [["x", "y"]])
