"""Tests for the error-breakdown analysis."""

import numpy as np
import pytest

from repro.city import simulate_city
from repro.config import tiny_scale
from repro.eval import by_area, by_archetype, by_hour, by_weekday, worst_slices
from repro.features import FeatureBuilder


@pytest.fixture(scope="module")
def setup():
    scale = tiny_scale()
    dataset = simulate_city(scale.simulation)
    _, test_set = FeatureBuilder(dataset, scale.features).build()
    rng = np.random.default_rng(0)
    predictions = test_set.gaps.astype(np.float64) + rng.normal(0, 1, test_set.n_items)
    return dataset, test_set, predictions


class TestByWeekday:
    def test_covers_all_items(self, setup):
        _, test_set, predictions = setup
        rows = by_weekday(predictions, test_set)
        assert sum(row.n_items for row in rows) == test_set.n_items

    def test_keys_are_weekday_names(self, setup):
        _, test_set, predictions = setup
        rows = by_weekday(predictions, test_set)
        assert {row.key for row in rows} <= {
            "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun",
        }

    def test_perfect_prediction_zero_error(self, setup):
        _, test_set, _ = setup
        rows = by_weekday(test_set.gaps.astype(np.float64), test_set)
        assert all(row.mae == 0.0 for row in rows)


class TestByHourAreaArchetype:
    def test_by_hour_partition(self, setup):
        _, test_set, predictions = setup
        rows = by_hour(predictions, test_set)
        assert sum(row.n_items for row in rows) == test_set.n_items
        hours = {int(row.key) for row in rows}
        assert hours <= set(range(24))

    def test_by_area_partition(self, setup):
        dataset, test_set, predictions = setup
        rows = by_area(predictions, test_set)
        assert len(rows) == dataset.n_areas
        assert sum(row.n_items for row in rows) == test_set.n_items

    def test_by_archetype_keys(self, setup):
        dataset, test_set, predictions = setup
        rows = by_archetype(predictions, test_set, dataset)
        present = {a.archetype.value for a in dataset.grid}
        assert {row.key for row in rows} == present


class TestWorstSlices:
    def test_sorted_descending(self, setup):
        _, test_set, predictions = setup
        rows = by_area(predictions, test_set)
        worst = worst_slices(rows, k=3)
        assert len(worst) == 3
        assert worst[0].rmse >= worst[1].rmse >= worst[2].rmse
        assert worst[0].rmse == max(row.rmse for row in rows)

    def test_k_larger_than_rows(self, setup):
        _, test_set, predictions = setup
        rows = by_weekday(predictions, test_set)
        assert len(worst_slices(rows, k=100)) == len(rows)
