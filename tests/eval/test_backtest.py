"""Tests for the dispatcher-loop backtest."""

import numpy as np
import pytest

from repro.eval.backtest import BacktestMoment, BacktestReport, _ranks


def moment(predicted, actual, day=0, timeslot=600):
    return BacktestMoment(
        day=day,
        timeslot=timeslot,
        predicted=np.asarray(predicted, dtype=float),
        actual=np.asarray(actual, dtype=float),
    )


class TestRanks:
    def test_simple_order(self):
        np.testing.assert_allclose(_ranks(np.array([10.0, 30.0, 20.0])), [0, 2, 1])

    def test_ties_get_average_rank(self):
        ranks = _ranks(np.array([1.0, 1.0, 5.0]))
        np.testing.assert_allclose(ranks, [0.5, 0.5, 2.0])


class TestBacktestMoment:
    def test_perfect_prediction_hit_rate_one(self):
        m = moment([5, 1, 9, 0], [5, 1, 9, 0])
        assert m.top_k_hit_rate(2) == 1.0

    def test_inverted_prediction_hit_rate_zero(self):
        m = moment([0, 1, 2, 3], [3, 2, 1, 0])
        assert m.top_k_hit_rate(2) == 0.0

    def test_k_larger_than_areas_clamped(self):
        m = moment([1, 2], [2, 1])
        assert 0.0 <= m.top_k_hit_rate(10) <= 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            moment([1], [1]).top_k_hit_rate(0)

    def test_rank_correlation_perfect(self):
        m = moment([1, 2, 3, 4], [10, 20, 30, 40])
        assert m.rank_correlation() == pytest.approx(1.0)

    def test_rank_correlation_inverted(self):
        m = moment([4, 3, 2, 1], [10, 20, 30, 40])
        assert m.rank_correlation() == pytest.approx(-1.0)

    def test_rank_correlation_constant_truth(self):
        m = moment([1, 2, 3], [5, 5, 5])
        assert m.rank_correlation() == 0.0


class TestBacktestReport:
    def test_overall_metrics(self):
        report = BacktestReport(
            moments=[moment([1, 2], [1, 2]), moment([3, 3], [4, 2], day=1)]
        )
        assert report.n_moments == 2
        assert report.overall_mae() == pytest.approx(0.5)
        assert report.overall_rmse() == pytest.approx(np.sqrt(0.5))

    def test_per_day_rmse_keys(self):
        report = BacktestReport(
            moments=[moment([1], [1], day=0), moment([1], [3], day=2)]
        )
        per_day = report.per_day_rmse()
        assert set(per_day) == {0, 2}
        assert per_day[0] == 0.0
        assert per_day[2] == 2.0

    def test_mean_hit_rate(self):
        report = BacktestReport(
            moments=[
                moment([5, 1, 0], [5, 1, 0]),
                moment([0, 1, 5], [5, 1, 0]),
            ]
        )
        assert report.mean_top_k_hit_rate(1) == pytest.approx(0.5)


class TestRunBacktest:
    @pytest.fixture(scope="class")
    def predictor(self):
        from repro.city import simulate_city
        from repro.config import tiny_scale
        from repro.core import BasicDeepSD, GapPredictor, Trainer, TrainingConfig
        from repro.features import FeatureBuilder

        scale = tiny_scale()
        dataset = simulate_city(scale.simulation)
        train_set, test_set = FeatureBuilder(dataset, scale.features).build()
        model = BasicDeepSD(
            dataset.n_areas, scale.features.window_minutes, scale.embeddings,
            dropout=0.1, seed=0,
        )
        trainer = Trainer(model, TrainingConfig(epochs=3, best_k=2, seed=0))
        trainer.fit(train_set)
        return GapPredictor.from_training(
            trainer, dataset, scale.features, train_set
        )

    def test_end_to_end(self, predictor):
        from repro.eval import run_backtest

        report = run_backtest(predictor, days=[8], timeslots=[480, 1140])
        assert report.n_moments == 2
        n_areas = predictor.dataset.n_areas
        assert report.moments[0].predicted.shape == (n_areas,)
        assert np.isfinite(report.overall_rmse())
        assert 0.0 <= report.mean_top_k_hit_rate(2) <= 1.0
        assert -1.0 <= report.mean_rank_correlation() <= 1.0

    def test_actuals_match_dataset(self, predictor):
        from repro.eval import run_backtest

        report = run_backtest(predictor, days=[8], timeslots=[480])
        actual = report.moments[0].actual
        for area in range(predictor.dataset.n_areas):
            assert actual[area] == predictor.dataset.gap(area, 8, 480)

    def test_area_subset(self, predictor):
        from repro.eval import run_backtest

        report = run_backtest(predictor, days=[8], timeslots=[480], areas=[0, 2])
        assert report.moments[0].predicted.shape == (2,)
