"""Tier-1 wiring for scripts/smoke.sh (the `smoke` marker).

Runs the full simulate → featurize → train → evaluate →
interrupt/resume → report pipeline at tiny scale through the real CLI
entry point in a subprocess, asserting every stage writes its manifest,
no ERROR events are logged, and a checkpoint-resumed training run
reproduces the uninterrupted run's weights bitwise.
Deselect with ``pytest -m "not smoke"`` when iterating.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "scripts" / "smoke.sh"


@pytest.mark.smoke
def test_smoke_pipeline(tmp_path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        ["bash", str(SCRIPT), str(tmp_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"smoke.sh failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert "smoke ok" in result.stdout
    assert "resume equivalence ok" in result.stdout
    # The script already checked these; assert the key artifacts anyway so
    # a silently weakened script cannot pass.
    assert (tmp_path / "model.npz.manifest.json").exists()
    assert (tmp_path / "ckpt" / "latest.json").exists()
    log = (tmp_path / "smoke.log").read_text()
    assert "event=train.epoch" in log
    assert "event=train.resume" in log


@pytest.mark.smoke
def test_smoke_script_is_executable_bash(tmp_path):
    del tmp_path
    text = SCRIPT.read_text()
    assert text.startswith("#!/usr/bin/env bash")
    assert os.access(SCRIPT, os.X_OK) or sys.platform == "win32"
