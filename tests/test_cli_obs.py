"""CLI observability: log flags, stage events, manifests, quiet/verbose."""

import json
import logging

import pytest

from repro.cli import main
from repro.obs import RunManifest, configure_tracing, get_tracer, load_chrome_trace
from repro.obs.logging import ROOT_LOGGER


@pytest.fixture(autouse=True)
def restore_logging():
    """Each main() call configures the repro logger; reset afterwards."""
    yield
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)
            handler.close()
    root.setLevel(logging.NOTSET)
    root.propagate = True


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """One tiny simulate+featurize shared by the tests below."""
    base = tmp_path_factory.mktemp("cli_obs")
    city = base / "city.npz"
    train, test = base / "train.npz", base / "test.npz"
    log = base / "setup.log"
    assert main(
        ["simulate", "--scale", "tiny", "--out", str(city),
         "--log-level", "debug", "--log-file", str(log)]
    ) == 0
    assert main(
        ["featurize", "--scale", "tiny", "--city", str(city),
         "--train-out", str(train), "--test-out", str(test),
         "--log-level", "debug", "--log-file", str(log)]
    ) == 0
    return {"base": base, "city": city, "train": train, "test": test, "log": log}


class TestStageEvents:
    def test_debug_log_level_emits_stage_events(self, pipeline):
        text = pipeline["log"].read_text()
        assert "event=simulate.start" in text
        assert "event=simulate.done" in text
        assert "event=featurize.start" in text
        assert "event=featurize.done" in text
        assert "event=manifest.written" in text

    def test_json_log_format(self, pipeline, tmp_path):
        log = tmp_path / "run.log"
        out = tmp_path / "city.npz"
        assert main(
            ["simulate", "--scale", "tiny", "--out", str(out),
             "--log-level", "debug", "--log-format", "json",
             "--log-file", str(log)]
        ) == 0
        events = [json.loads(line) for line in log.read_text().splitlines()]
        assert any(e.get("event") == "simulate.done" for e in events)
        done = next(e for e in events if e.get("event") == "simulate.done")
        assert done["orders"] > 0 and done["seconds"] >= 0


class TestManifests:
    def test_simulate_and_featurize_manifests(self, pipeline):
        city_manifest = RunManifest.load(str(pipeline["city"]) + ".manifest.json")
        assert city_manifest.command == "simulate"
        assert [s["name"] for s in city_manifest.stages] == ["simulate", "save"]
        assert city_manifest.metrics["n_orders"] > 0
        assert city_manifest.seed == 7  # tiny-scale default seed

        feat_manifest = RunManifest.load(str(pipeline["train"]) + ".manifest.json")
        assert feat_manifest.command == "featurize"
        assert feat_manifest.metrics["train_items"] > 0

    def test_manifest_path_override(self, pipeline, tmp_path):
        override = tmp_path / "custom.json"
        out = tmp_path / "city.npz"
        assert main(
            ["simulate", "--scale", "tiny", "--out", str(out),
             "--manifest", str(override), "--quiet"]
        ) == 0
        assert override.exists()
        assert not (tmp_path / "city.npz.manifest.json").exists()

    def test_train_and_evaluate_manifests_and_report(
        self, pipeline, tmp_path, capsys
    ):
        weights = tmp_path / "model.npz"
        log = tmp_path / "train.log"
        assert main(
            ["train", "--model", "basic", "--scale", "tiny",
             "--train", str(pipeline["train"]), "--test", str(pipeline["test"]),
             "--epochs", "2", "--save", str(weights),
             "--log-level", "info", "--log-file", str(log)]
        ) == 0
        # One structured event per epoch at info level (satellite 1).
        text = log.read_text()
        assert text.count("event=train.epoch") == 2
        assert "train_loss=" in text and "val_rmse=" in text
        assert "lr=" in text and "grad_norm=" in text and "seconds=" in text

        train_manifest = RunManifest.load(str(weights) + ".manifest.json")
        assert train_manifest.command == "train"
        assert "fit" in [s["name"] for s in train_manifest.stages]
        assert train_manifest.metrics["rmse"] > 0

        assert main(
            ["evaluate", "--model", "basic", "--scale", "tiny",
             "--weights", str(weights),
             "--train", str(pipeline["train"]), "--test", str(pipeline["test"]),
             "--quiet"]
        ) == 0
        eval_path = str(weights) + ".eval.manifest.json"
        eval_manifest = RunManifest.load(eval_path)
        assert eval_manifest.command == "evaluate"
        assert eval_manifest.metrics["items"] > 0

        capsys.readouterr()
        assert main(
            ["report", str(weights) + ".manifest.json", eval_path, "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "Stage timings" in out
        assert "Final metrics" in out
        assert "rmse" in out


class TestTracing:
    def test_train_trace_export_and_summary(self, pipeline, tmp_path, capsys):
        trace_file = tmp_path / "train_trace.json"
        try:
            assert main(
                ["train", "--model", "basic", "--scale", "tiny",
                 "--train", str(pipeline["train"]), "--epochs", "1",
                 "--quiet", "--trace-file", str(trace_file)]
            ) == 0
        finally:
            # --trace-file flips the process tracer on; restore it so
            # later tests see the documented off-by-default state.
            configure_tracing(enabled=False)
            get_tracer().clear()
        spans = load_chrome_trace(str(trace_file))
        names = {span.name for span in spans}
        assert {"train.epoch", "train.batch_gather", "train.forward",
                "train.backward", "train.optim.step"} <= names
        by_id = {span.span_id: span for span in spans}
        forward = next(s for s in reversed(spans) if s.name == "train.forward")
        assert by_id[forward.parent_id].name == "train.epoch"

        capsys.readouterr()
        assert main(["trace", str(trace_file), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "train.epoch" in out
        assert "p95_ms" in out and "% of parent" in out

    def test_trace_flag_without_file_records_but_writes_nothing(
        self, pipeline, tmp_path
    ):
        try:
            assert main(
                ["train", "--model", "basic", "--scale", "tiny",
                 "--train", str(pipeline["train"]), "--epochs", "1",
                 "--quiet", "--trace"]
            ) == 0
            assert len(get_tracer()) > 0
        finally:
            configure_tracing(enabled=False)
            get_tracer().clear()


class TestQuietVerbose:
    def test_quiet_suppresses_epoch_lines(self, pipeline, tmp_path):
        log = tmp_path / "quiet.log"
        assert main(
            ["train", "--model", "basic", "--scale", "tiny",
             "--train", str(pipeline["train"]), "--epochs", "1",
             "--quiet", "--log-file", str(log)]
        ) == 0
        assert "event=train.epoch" not in log.read_text()

    def test_verbose_adds_debug_events(self, pipeline, tmp_path):
        log = tmp_path / "verbose.log"
        assert main(
            ["train", "--model", "basic", "--scale", "tiny",
             "--train", str(pipeline["train"]), "--epochs", "1",
             "--verbose", "--log-file", str(log)]
        ) == 0
        text = log.read_text()
        assert "event=train.start" in text
        assert "event=train.done" in text
        assert "event=train.epoch" in text
