"""Shared fixtures for scenario-pack tests: one tiny simulated city."""

import os

import pytest

from repro.city import simulate_city
from repro.config import tiny_scale


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the experiment artifact cache at a session-temporary dir so
    scenario tests never touch (or depend on) the real benchmark cache."""
    cache = tmp_path_factory.mktemp("scenario_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def scale():
    return tiny_scale()


@pytest.fixture(scope="session")
def dataset(scale):
    return simulate_city(scale.simulation)
