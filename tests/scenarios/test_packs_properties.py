"""Property tests: pack stacks are seeded-reproducible and, when their
channel sets are disjoint, order-independent — both bitwise.

Hypothesis drives randomly composed stacks with randomly drawn pack
parameters against one shared tiny city (transforms are pure, so sharing
is safe).  ``deadline=None`` because the first example pays the one-off
city simulation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.city import simulate_city
from repro.config import tiny_scale
from repro.scenarios import PACK_TYPES, apply_packs, build_pack

pytestmark = pytest.mark.scenarios

_SCALE = tiny_scale()
_DATASET = None


def _dataset():
    global _DATASET
    if _DATASET is None:
        _DATASET = simulate_city(_SCALE.simulation)
    return _DATASET


#: Per-pack strategies over a few load-bearing parameters; everything not
#: drawn keeps its default.
_PARAMS = {
    "holiday": {
        "demand_scale": st.floats(1.0, 2.0),
        "rush_damping": st.floats(0.2, 1.0),
    },
    "concert": {
        "intensity": st.floats(1.0, 4.0),
        "duration": st.integers(30, 300),
    },
    "storm": {
        "congestion": st.floats(0.0, 1.0),
        "sweep_minutes": st.integers(0, 120),
    },
    "supply_shock": {
        "outage": st.floats(0.0, 1.0),
        "duration": st.integers(10, 400),
    },
    "airport": {
        "morning_scale": st.floats(1.0, 3.0),
        "midday_damping": st.floats(0.3, 1.0),
    },
    "archetype_mix": {
        "suburban": st.floats(0.5, 2.0),
        "business": st.floats(0.5, 2.0),
    },
}


@st.composite
def pack_stacks(draw, min_size=1, max_size=3, names=None):
    chosen = draw(
        st.lists(
            st.sampled_from(sorted(names or PACK_TYPES)),
            min_size=min_size,
            max_size=max_size,
            unique=True,
        )
    )
    return [
        build_pack(name, {k: draw(v) for k, v in _PARAMS[name].items()})
        for name in chosen
    ]


def _fingerprint(dataset):
    return tuple(
        array.tobytes()
        for array in (
            dataset.valid_counts,
            dataset.invalid_counts,
            dataset.weather.types,
            dataset.weather.temperature,
            dataset.weather.pm25,
            dataset.traffic.level_counts,
        )
    )


@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(stack=pack_stacks(), seed=st.integers(0, 2**31 - 1))
def test_stacks_are_bitwise_reproducible(stack, seed):
    dataset = _dataset()
    first = apply_packs(dataset, stack, seed=seed)
    second = apply_packs(dataset, stack, seed=seed)
    assert _fingerprint(first) == _fingerprint(second)


@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    demand=pack_stacks(max_size=1, names=[
        n for n in PACK_TYPES if "demand" in PACK_TYPES[n].channels
    ]),
    env=pack_stacks(max_size=1, names=["storm"]),
    seed=st.integers(0, 2**31 - 1),
)
def test_disjoint_channel_packs_commute(demand, env, seed):
    """demand-only × weather/traffic-only packs commute bitwise."""
    dataset = _dataset()
    forward = apply_packs(dataset, demand + env, seed=seed)
    backward = apply_packs(dataset, env + demand, seed=seed)
    assert _fingerprint(forward) == _fingerprint(backward)


@settings(max_examples=10, deadline=None)
@given(stack=pack_stacks(), seed=st.integers(0, 2**31 - 1))
def test_packs_never_mutate_their_input(stack, seed):
    dataset = _dataset()
    before = _fingerprint(dataset)
    apply_packs(dataset, stack, seed=seed)
    assert _fingerprint(dataset) == before
