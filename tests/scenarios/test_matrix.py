"""Matrix runner tests: spec parsing, report shape, worker invariance."""

import json

import pytest

from repro.exceptions import ConfigError
from repro.scenarios import (
    DEFAULT_SCENARIOS,
    REPORT_SCHEMA_VERSION,
    STEADY,
    render_report,
    resolve_scenarios,
    run_matrix,
    save_report,
    split_model_keys,
)

pytestmark = pytest.mark.scenarios


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------


def test_resolve_scenarios_all_includes_steady_and_defaults():
    scenarios = resolve_scenarios("all")
    assert set(scenarios) == {STEADY, *DEFAULT_SCENARIOS}
    assert scenarios[STEADY] == []
    assert [p.name for p in scenarios["storm_rush"]] == ["storm", "supply_shock"]


def test_resolve_scenarios_inline_stack():
    scenarios = resolve_scenarios("storm:duration=60,holiday")
    assert scenarios["storm:duration=60"][0].duration == 60
    assert STEADY in scenarios


def test_resolve_scenarios_rejects_junk():
    with pytest.raises(ConfigError):
        resolve_scenarios("")
    with pytest.raises(ConfigError):
        resolve_scenarios("tsunami")


def test_split_model_keys():
    nn, baselines = split_model_keys("basic,average")
    assert nn == ["basic"] and baselines == ["average"]
    nn, baselines = split_model_keys("all")
    assert nn == ["basic", "advanced"] and "average" in baselines
    with pytest.raises(ConfigError, match="unknown models"):
        split_model_keys("basic,quantum")
    with pytest.raises(ConfigError, match="empty"):
        split_model_keys(" , ")


# ----------------------------------------------------------------------
# A small real matrix (baselines only: fast, no NN training)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_matrix():
    return run_matrix(
        scale_name="tiny",
        models="average,lasso",
        packs="storm,supply_shock",
        workers=1,
    )


def test_report_shape(small_matrix):
    report, _ = small_matrix
    assert report["schema_version"] == REPORT_SCHEMA_VERSION
    assert report["models"] == ["average", "lasso"]
    assert set(report["scenarios"]) == {STEADY, "storm", "supply_shock"}
    # models × scenarios entries, steady rows first.
    assert len(report["results"]) == 6
    steady_rows = [r for r in report["results"] if r["scenario"] == STEADY]
    assert report["results"][:2] == steady_rows
    for row in report["results"]:
        # Hour slices partition the items, so the worst slice MAE bounds
        # the overall (item-weighted average) MAE from above.
        assert row["worst_case_mae"] >= row["mae"]
        assert row["worst_slice"]["mae"] == row["worst_case_mae"]
        assert row["n_items"] > 0
        assert len(row["slices"]) > 0
    for row in steady_rows:
        assert row["degradation"] == 1.0


def test_degradation_is_relative_to_steady(small_matrix):
    report, _ = small_matrix
    steady = {
        r["model"]: r["mae"]
        for r in report["results"]
        if r["scenario"] == STEADY
    }
    for row in report["results"]:
        assert row["degradation"] == pytest.approx(
            row["mae"] / steady[row["model"]]
        )


def test_report_is_json_stable_and_renders(small_matrix, tmp_path):
    report, _ = small_matrix
    path = tmp_path / "report.json"
    save_report(report, path)
    loaded = json.loads(path.read_text())
    # Full float round-trip: the saved report is bit-exact.
    assert json.dumps(loaded, sort_keys=True) == json.dumps(
        report, sort_keys=True
    )
    table = render_report(report)
    assert "Robustness matrix" in table
    assert "supply_shock" in table


def test_matrix_is_invariant_to_worker_count(small_matrix):
    """Re-running with a different worker count reproduces the report
    byte for byte (per-task seeds + the shared artifact cache)."""
    report, _ = small_matrix
    again, _ = run_matrix(
        scale_name="tiny",
        models="average,lasso",
        packs="storm,supply_shock",
        workers=2,
    )
    assert json.dumps(again, sort_keys=True) == json.dumps(
        report, sort_keys=True
    )
