"""Unit tests for the scenario packs: purity, scoping, semantics."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.scenarios import (
    PACK_TYPES,
    StormPack,
    SupplyShockPack,
    apply_packs,
    build_pack,
    parse_pack_stack,
)

pytestmark = pytest.mark.scenarios


def _snapshot(dataset):
    return {
        "valid": dataset.valid_counts.copy(),
        "invalid": dataset.invalid_counts.copy(),
        "types": dataset.weather.types.copy(),
        "temperature": dataset.weather.temperature.copy(),
        "pm25": dataset.weather.pm25.copy(),
        "traffic": dataset.traffic.level_counts.copy(),
    }


def _arrays(dataset):
    return {
        "valid": dataset.valid_counts,
        "invalid": dataset.invalid_counts,
        "types": dataset.weather.types,
        "temperature": dataset.weather.temperature,
        "pm25": dataset.weather.pm25,
        "traffic": dataset.traffic.level_counts,
    }


#: Channel -> the snapshot arrays it owns.
_CHANNEL_ARRAYS = {
    "demand": ("valid", "invalid"),
    "weather": ("types", "temperature", "pm25"),
    "traffic": ("traffic",),
}


@pytest.mark.parametrize("name", sorted(PACK_TYPES))
def test_pack_is_pure_and_changes_something(name, dataset):
    before = _snapshot(dataset)
    pack = build_pack(name)
    out = apply_packs(dataset, [pack], seed=3)
    # Purity: the input dataset is untouched.
    for key, array in _arrays(dataset).items():
        np.testing.assert_array_equal(array, before[key])
    # The pack is not a no-op.
    changed = any(
        not np.array_equal(_arrays(out)[key], before[key]) for key in before
    )
    assert changed, f"pack {name} changed nothing"


@pytest.mark.parametrize("name", sorted(PACK_TYPES))
def test_pack_touches_only_declared_channels(name, dataset):
    before = _snapshot(dataset)
    pack = build_pack(name)
    out = apply_packs(dataset, [pack], seed=3)
    for channel, keys in _CHANNEL_ARRAYS.items():
        if channel in pack.channels:
            continue
        for key in keys:
            np.testing.assert_array_equal(
                _arrays(out)[key], before[key],
                err_msg=f"pack {name} wrote undeclared channel {channel}",
            )


def test_storm_preserves_traffic_segment_totals(dataset):
    out = StormPack().apply(dataset, seed=3)
    np.testing.assert_array_equal(
        out.traffic.level_counts.sum(axis=-1),
        dataset.traffic.level_counts.sum(axis=-1),
    )
    assert (out.traffic.level_counts >= 0).all()
    # Congestion strictly increases somewhere.
    assert (
        out.traffic.level_counts[..., 0].sum()
        > dataset.traffic.level_counts[..., 0].sum()
    )


def test_supply_shock_conserves_demand_and_explodes_gap(dataset):
    out = SupplyShockPack().apply(dataset, seed=3)
    np.testing.assert_array_equal(
        out.valid_counts + out.invalid_counts,
        dataset.valid_counts + dataset.invalid_counts,
    )
    assert out.invalid_counts.sum() > dataset.invalid_counts.sum()
    assert (out.valid_counts >= 0).all()


def _day_slice(key: str, array: np.ndarray, day: int) -> np.ndarray:
    # Weather series are (days, 1440); demand/traffic are (areas, days, ...).
    if key in ("types", "temperature", "pm25"):
        return array[day]
    return array[:, day]


@pytest.mark.parametrize("name", sorted(PACK_TYPES))
def test_default_packs_perturb_the_test_split(name, dataset):
    """Every default-configured pack must touch the final (test) day."""
    last = dataset.n_days - 1
    out = apply_packs(dataset, [build_pack(name)], seed=3)
    changed = any(
        not np.array_equal(
            _day_slice(key, _arrays(out)[key], last),
            _day_slice(key, _arrays(dataset)[key], last),
        )
        for key in _arrays(dataset)
    )
    assert changed, f"pack {name} left the final test day untouched"


def test_gap_labels_track_transformed_counts(dataset):
    out = SupplyShockPack(days=(dataset.n_days - 1,), outage=1.0).apply(
        dataset, seed=0
    )
    day, start = dataset.n_days - 1, 17 * 60
    # With a total outage, the transformed city's invalid counts over the
    # window equal the original total demand there.
    window = (slice(None), day, slice(start, start + 150))
    np.testing.assert_array_equal(out.valid_counts[window], 0)
    np.testing.assert_array_equal(
        out.invalid_counts[window],
        dataset.valid_counts[window] + dataset.invalid_counts[window],
    )
    # And the rebuilt cumulative-gap index agrees with the raw counts.
    np.testing.assert_array_equal(
        out._invalid_cumsum[:, day, -1], out.invalid_counts[:, day].sum(axis=-1)
    )


def test_build_pack_rejects_unknowns():
    with pytest.raises(ConfigError, match="unknown scenario pack"):
        build_pack("tsunami")
    with pytest.raises(ConfigError, match="bad parameters"):
        build_pack("storm", {"wind": 9000})


def test_supply_shock_outage_validation(dataset):
    with pytest.raises(ConfigError, match="outage"):
        SupplyShockPack(outage=1.5).apply(dataset, seed=0)


def test_day_selection_validation(dataset):
    with pytest.raises(ConfigError, match="outside"):
        SupplyShockPack(days=(dataset.n_days,)).apply(dataset, seed=0)


def test_parse_pack_stack_grammar():
    packs = parse_pack_stack("storm:duration=120+supply_shock:outage=0.5")
    assert [p.name for p in packs] == ["storm", "supply_shock"]
    assert packs[0].duration == 120
    assert packs[1].outage == 0.5
    (holiday,) = parse_pack_stack("holiday:days=[1,3]")
    assert holiday.days == (1, 3)
    with pytest.raises(ConfigError, match="key=value"):
        parse_pack_stack("storm:duration")
    with pytest.raises(ConfigError, match="empty pack stack"):
        parse_pack_stack("++")


def test_describe_is_json_ready():
    import json

    pack = build_pack("holiday", {"days": [1, 2]})
    described = pack.describe()
    assert described["pack"] == "holiday"
    assert described["channels"] == ["demand"]
    assert described["days"] == [1, 2]
    json.dumps(described)  # must not raise
