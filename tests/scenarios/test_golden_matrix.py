"""Golden regression: the small-scale robustness report is pinned.

``golden_matrix.json`` was produced by::

    run_matrix(scale_name="tiny", models="average,lasso",
               packs="storm,supply_shock", workers=1)

and committed.  The comparison walks the structures field by field —
exact for strings/ints/shapes, tolerant only on floats — so any drift in
the simulator, the packs, the featurizer, the baselines or the report
assembly shows up as a named path, not a blob diff.  Regenerate the file
with the snippet above (after deliberately changing behavior) and review
the diff like any other golden.
"""

import json
import math
from pathlib import Path

import pytest

from repro.scenarios import run_matrix

pytestmark = pytest.mark.scenarios

GOLDEN = Path(__file__).parent / "golden_matrix.json"

#: Relative float tolerance: generous enough for BLAS/libm variation
#: across platforms, tight enough that any real behavior change trips it.
REL_TOL = 1e-6
ABS_TOL = 1e-9


def _compare(expected, actual, path="$"):
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected object"
        assert sorted(expected) == sorted(actual), (
            f"{path}: keys differ: {sorted(expected)} vs {sorted(actual)}"
        )
        for key in expected:
            _compare(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected list"
        assert len(expected) == len(actual), (
            f"{path}: length {len(expected)} vs {len(actual)}"
        )
        for i, (e, a) in enumerate(zip(expected, actual)):
            _compare(e, a, f"{path}[{i}]")
    elif isinstance(expected, float) and not isinstance(expected, bool):
        assert isinstance(actual, (int, float)), f"{path}: expected number"
        assert math.isclose(
            expected, float(actual), rel_tol=REL_TOL, abs_tol=ABS_TOL
        ), f"{path}: {expected} != {actual}"
    else:
        assert expected == actual, f"{path}: {expected!r} != {actual!r}"


def test_matrix_report_matches_golden():
    expected = json.loads(GOLDEN.read_text())
    actual, _ = run_matrix(
        scale_name="tiny",
        models="average,lasso",
        packs="storm,supply_shock",
        workers=1,
    )
    # JSON round-trip the fresh report so both sides saw the same
    # serialization (tuples→lists, non-string keys, float formatting).
    _compare(expected, json.loads(json.dumps(actual)))
