"""End-to-end integration tests: the full pipeline across module seams.

simulate → save/load city → featurize → save/load examples → train →
save/load weights → predict (batch and online) → evaluate.
"""

import numpy as np
import pytest

from repro.baselines import EmpiricalAverage, GradientBoostingRegressor
from repro.city import CityDataset, simulate_city
from repro.config import tiny_scale
from repro.core import (
    AdvancedDeepSD,
    BasicDeepSD,
    GapPredictor,
    InputScales,
    Trainer,
    TrainingConfig,
)
from repro.eval import evaluate
from repro.features import ExampleSet, FeatureBuilder, tree_design_matrix
from repro.nn import load_weights, save_weights


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Run the whole pipeline once, exercising every persistence seam."""
    base = tmp_path_factory.mktemp("pipeline")
    scale = tiny_scale()

    dataset = simulate_city(scale.simulation)
    dataset.save(base / "city.npz")
    dataset = CityDataset.load(base / "city.npz")

    train_set, test_set = FeatureBuilder(dataset, scale.features).build()
    train_set.save(base / "train.npz")
    test_set.save(base / "test.npz")
    train_set = ExampleSet.load(base / "train.npz")
    test_set = ExampleSet.load(base / "test.npz")

    model = AdvancedDeepSD(
        dataset.n_areas, scale.features.window_minutes, scale.embeddings,
        dropout=0.1, seed=3,
    )
    trainer = Trainer(model, TrainingConfig(epochs=4, best_k=2, seed=3))
    history = trainer.fit(train_set, eval_set=test_set)
    save_weights(model, base / "weights.npz")

    return {
        "base": base,
        "scale": scale,
        "dataset": dataset,
        "train": train_set,
        "test": test_set,
        "trainer": trainer,
        "model": model,
        "history": history,
    }


class TestFullPipeline:
    def test_training_progressed(self, pipeline):
        history = pipeline["history"]
        assert history.train_loss[-1] < history.train_loss[0]

    def test_model_beats_average_baseline(self, pipeline):
        test_set = pipeline["test"]
        targets = test_set.gaps.astype(np.float64)
        deepsd = evaluate(pipeline["trainer"].predict(test_set), targets)
        average = evaluate(
            EmpiricalAverage().fit(pipeline["train"]).predict(test_set), targets
        )
        assert deepsd.rmse < average.rmse

    def test_weights_roundtrip_reproduces_predictions(self, pipeline):
        scale = pipeline["scale"]
        dataset = pipeline["dataset"]
        clone = AdvancedDeepSD(
            dataset.n_areas, scale.features.window_minutes, scale.embeddings,
            dropout=0.1, seed=99,
        )
        load_weights(clone, pipeline["base"] / "weights.npz")
        clone.input_scales = InputScales.from_example_set(pipeline["train"])
        original = pipeline["trainer"]._predict_current(pipeline["test"])
        restored = Trainer(clone).predict(pipeline["test"])
        np.testing.assert_allclose(restored, original, rtol=1e-6)

    def test_online_predictor_agrees_with_batch(self, pipeline):
        predictor = GapPredictor.from_training(
            pipeline["trainer"],
            pipeline["dataset"],
            pipeline["scale"].features,
            pipeline["train"],
        )
        test_set = pipeline["test"]
        batch = pipeline["trainer"].predict(test_set)
        i = len(test_set) // 3
        online = predictor.predict(
            int(test_set.area_ids[i]),
            int(test_set.day_ids[i]),
            int(test_set.time_ids[i]),
        )
        assert online == pytest.approx(batch[i], rel=1e-5)

    def test_gbdt_trains_on_same_features(self, pipeline):
        train_set, test_set = pipeline["train"], pipeline["test"]
        x_train, _ = tree_design_matrix(train_set)
        x_test, _ = tree_design_matrix(test_set)
        model = GradientBoostingRegressor(n_estimators=10, max_depth=3, seed=0)
        model.fit(x_train, train_set.gaps.astype(np.float64))
        report = evaluate(model.predict(x_test), test_set.gaps.astype(np.float64))
        assert np.isfinite(report.rmse)

    def test_finetune_grown_model_from_saved_weights(self, pipeline):
        """The extendability workflow across a serialization boundary."""
        scale = pipeline["scale"]
        dataset = pipeline["dataset"]
        slim = AdvancedDeepSD(
            dataset.n_areas, scale.features.window_minutes, scale.embeddings,
            dropout=0.1, seed=5, use_weather=False, use_traffic=False,
        )
        Trainer(slim, TrainingConfig(epochs=1, best_k=1, seed=5)).fit(
            pipeline["train"]
        )
        path = pipeline["base"] / "slim.npz"
        save_weights(slim, path)

        grown = AdvancedDeepSD(
            dataset.n_areas, scale.features.window_minutes, scale.embeddings,
            dropout=0.1, seed=6,
        )
        load_weights(grown, path, strict=False)
        np.testing.assert_array_equal(
            grown.sd_block.projection.weight.data,
            slim.sd_block.projection.weight.data,
        )
        history = Trainer(grown, TrainingConfig(epochs=1, best_k=1, seed=6)).fit(
            pipeline["train"]
        )
        assert np.isfinite(history.train_loss[0])


class TestBasicModelPipeline:
    def test_basic_trains_and_predicts(self, pipeline):
        scale = pipeline["scale"]
        dataset = pipeline["dataset"]
        model = BasicDeepSD(
            dataset.n_areas, scale.features.window_minutes, scale.embeddings,
            dropout=0.1, seed=4,
        )
        trainer = Trainer(model, TrainingConfig(epochs=2, best_k=1, seed=4))
        trainer.fit(pipeline["train"])
        predictions = trainer.predict(pipeline["test"])
        assert predictions.shape == (pipeline["test"].n_items,)
        assert np.isfinite(predictions).all()
