"""Tests for the binner, CART tree, GBDT and random forest."""

import numpy as np
import pytest

from repro.baselines import (
    Binner,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
)
from repro.exceptions import NotFittedError


RNG = np.random.default_rng(11)


def step_data(n=500):
    """Piecewise-constant target a depth-2 tree can fit exactly."""
    x = RNG.uniform(-1, 1, size=(n, 2))
    y = np.where(x[:, 0] > 0, 10.0, 0.0) + np.where(x[:, 1] > 0.5, 5.0, 0.0)
    return x, y


def smooth_data(n=800):
    x = RNG.uniform(-2, 2, size=(n, 3))
    y = np.sin(x[:, 0]) * 3 + x[:, 1] ** 2 + RNG.normal(0, 0.1, n)
    return x, y


class TestBinner:
    def test_codes_in_range(self):
        x = RNG.normal(size=(200, 4))
        codes = Binner(16).fit_transform(x)
        assert codes.dtype == np.uint8
        assert codes.max() < 16

    def test_monotone_within_feature(self):
        x = np.sort(RNG.normal(size=(100, 1)), axis=0)
        codes = Binner(8).fit_transform(x)
        assert (np.diff(codes[:, 0].astype(int)) >= 0).all()

    def test_constant_feature_single_bin(self):
        x = np.ones((50, 1))
        codes = Binner(8).fit_transform(x)
        assert len(np.unique(codes)) == 1

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            Binner().transform(np.ones((2, 2)))

    def test_feature_count_mismatch(self):
        binner = Binner(8).fit(np.ones((10, 3)))
        with pytest.raises(ValueError):
            binner.transform(np.ones((5, 2)))

    def test_invalid_n_bins(self):
        with pytest.raises(ValueError):
            Binner(1)
        with pytest.raises(ValueError):
            Binner(257)

    def test_n_features(self):
        binner = Binner(8).fit(np.ones((10, 3)))
        assert binner.n_features == 3


class TestDecisionTree:
    def test_fits_step_function(self):
        # Quantile binning means the split lands on the nearest bin edge,
        # so a few points adjacent to the step may be misrouted.
        x, y = step_data()
        tree = DecisionTreeRegressor(max_depth=3, n_bins=128).fit(x, y)
        predictions = tree.predict(x)
        assert np.isclose(predictions, y, atol=0.5).mean() > 0.95
        assert ((predictions - y) ** 2).mean() < 0.05 * y.var()

    def test_constant_target_single_leaf(self):
        x = RNG.normal(size=(100, 3))
        y = np.full(100, 7.0)
        tree = DecisionTreeRegressor(max_depth=5).fit(x, y)
        assert tree.n_nodes == 1
        np.testing.assert_allclose(tree.predict(x), y)

    def test_depth_limit_respected(self):
        x, y = smooth_data()
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self):
        x, y = smooth_data(200)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=20).fit(x, y)
        codes = tree._binner.transform(x)
        # Count samples routed to each leaf.
        leaves = {}
        for row in range(len(x)):
            node = 0
            while tree._nodes[node].feature != -1:
                n = tree._nodes[node]
                node = n.left if codes[row, n.feature] <= n.bin_threshold else n.right
            leaves[node] = leaves.get(node, 0) + 1
        assert min(leaves.values()) >= 20

    def test_deeper_fits_better(self):
        x, y = smooth_data()
        shallow = DecisionTreeRegressor(max_depth=2).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(x, y)
        err_shallow = ((shallow.predict(x) - y) ** 2).mean()
        err_deep = ((deep.predict(x) - y) ** 2).mean()
        assert err_deep < err_shallow

    def test_prediction_is_leaf_mean(self):
        x, y = smooth_data(300)
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y)
        predictions = tree.predict(x)
        for value in np.unique(predictions):
            members = predictions == value
            assert value == pytest.approx(y[members].mean(), rel=1e-9)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.ones((2, 2)))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_feature_subsampling_still_works(self):
        x, y = smooth_data()
        tree = DecisionTreeRegressor(
            max_depth=6, max_features=1, rng=np.random.default_rng(0)
        ).fit(x, y)
        # Sub-sampled trees are weaker but must beat the mean predictor.
        assert ((tree.predict(x) - y) ** 2).mean() < y.var()

    def test_fit_binned_then_predict_raw_raises(self):
        x, y = step_data(100)
        codes = Binner(8).fit_transform(x)
        tree = DecisionTreeRegressor(max_depth=2)
        tree.fit_binned(codes, y)
        with pytest.raises(ValueError):
            tree.predict(x)
        assert tree.predict_binned(codes).shape == (100,)


class TestGBDT:
    def test_improves_over_iterations(self):
        x, y = smooth_data()
        model = GradientBoostingRegressor(n_estimators=40, max_depth=3).fit(x, y)
        scores = model.train_scores_
        assert scores[-1] < scores[0]
        assert scores[-1] < 0.5 * np.sqrt(y.var())

    def test_beats_single_tree(self):
        x, y = smooth_data()
        x_test, y_test = smooth_data(300)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        gbdt = GradientBoostingRegressor(n_estimators=60, max_depth=3).fit(x, y)
        err_tree = ((tree.predict(x_test) - y_test) ** 2).mean()
        err_gbdt = ((gbdt.predict(x_test) - y_test) ** 2).mean()
        assert err_gbdt < err_tree

    def test_learning_rate_zero_point_one_base_prediction(self):
        x, y = smooth_data(200)
        model = GradientBoostingRegressor(n_estimators=1, learning_rate=0.1).fit(x, y)
        # One tree at lr 0.1 moves predictions only 10% toward residuals.
        assert abs(model.predict(x).mean() - y.mean()) < 1.0

    def test_subsample_mode(self):
        x, y = smooth_data()
        model = GradientBoostingRegressor(
            n_estimators=20, subsample=0.5, seed=1
        ).fit(x, y)
        assert model.n_trees == 20
        assert ((model.predict(x) - y) ** 2).mean() < y.var()

    def test_deterministic_given_seed(self):
        x, y = smooth_data(300)
        a = GradientBoostingRegressor(n_estimators=10, subsample=0.7, seed=5).fit(x, y)
        b = GradientBoostingRegressor(n_estimators=10, subsample=0.7, seed=5).fit(x, y)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            GradientBoostingRegressor().predict(np.ones((2, 2)))


class TestRandomForest:
    def test_beats_mean_predictor(self):
        x, y = smooth_data()
        x_test, y_test = smooth_data(300)
        model = RandomForestRegressor(n_estimators=20, seed=2).fit(x, y)
        err = ((model.predict(x_test) - y_test) ** 2).mean()
        assert err < y_test.var()

    def test_prediction_is_tree_average(self):
        x, y = step_data(200)
        model = RandomForestRegressor(n_estimators=5, seed=0).fit(x, y)
        codes = model._binner.transform(x)
        manual = np.mean([t.predict_binned(codes) for t in model._trees], axis=0)
        np.testing.assert_allclose(model.predict(x), manual)

    def test_no_bootstrap_trees_identical(self):
        x, y = step_data(300)
        model = RandomForestRegressor(
            n_estimators=5, bootstrap=False, max_features="all", seed=0
        ).fit(x, y)
        # Without row/feature randomness all trees are identical, so the
        # ensemble equals any single tree.
        codes = model._binner.transform(x)
        first = model._trees[0].predict_binned(codes)
        np.testing.assert_allclose(model.predict(x), first)
        assert ((first - y) ** 2).mean() < 0.05 * y.var()

    def test_max_features_modes(self):
        x, y = smooth_data(200)
        for mode in ("sqrt", "all", 2):
            model = RandomForestRegressor(n_estimators=3, max_features=mode, seed=0)
            model.fit(x, y)
            assert model.n_trees == 3

    def test_invalid_max_features(self):
        x, y = smooth_data(100)
        with pytest.raises(ValueError):
            RandomForestRegressor(max_features="half").fit(x, y)

    def test_deterministic_given_seed(self):
        x, y = smooth_data(200)
        a = RandomForestRegressor(n_estimators=4, seed=9).fit(x, y)
        b = RandomForestRegressor(n_estimators=4, seed=9).fit(x, y)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
