"""Tests for the empirical average baseline."""

import numpy as np
import pytest

from repro.baselines import EmpiricalAverage
from repro.city import simulate_city
from repro.config import tiny_scale
from repro.exceptions import NotFittedError
from repro.features import FeatureBuilder


@pytest.fixture(scope="module")
def example_sets():
    scale = tiny_scale()
    dataset = simulate_city(scale.simulation)
    return FeatureBuilder(dataset, scale.features).build()


class TestEmpiricalAverage:
    def test_predicts_training_mean_per_pair(self, example_sets):
        train, _ = example_sets
        model = EmpiricalAverage().fit(train)
        predictions = model.predict(train)
        # For one (area, timeslot) pair, prediction = mean of its train gaps.
        area, time = int(train.area_ids[0]), int(train.time_ids[0])
        mask = (train.area_ids == area) & (train.time_ids == time)
        expected = train.gaps[mask].mean()
        assert predictions[0] == pytest.approx(expected, rel=1e-6)
        np.testing.assert_allclose(
            predictions[mask], np.full(mask.sum(), expected), rtol=1e-6
        )

    def test_constant_across_days_same_pair(self, example_sets):
        train, test = example_sets
        model = EmpiricalAverage().fit(train)
        predictions = model.predict(test)
        area, time = int(test.area_ids[0]), int(test.time_ids[0])
        mask = (test.area_ids == area) & (test.time_ids == time)
        assert len(np.unique(predictions[mask])) == 1

    def test_unseen_timeslot_falls_back_to_area_mean(self, example_sets):
        train, test = example_sets
        model = EmpiricalAverage().fit(train)
        sub = test.subset(np.array([0]))
        sub.time_ids = np.array([1439])  # never a training timeslot at tiny scale
        prediction = model.predict(sub)[0]
        area = int(sub.area_ids[0])
        expected = train.gaps[train.area_ids == area].mean()
        assert prediction == pytest.approx(expected, rel=1e-6)

    def test_predict_before_fit(self, example_sets):
        train, _ = example_sets
        with pytest.raises(NotFittedError):
            EmpiricalAverage().predict(train)

    def test_beats_nothing_but_is_finite(self, example_sets):
        train, test = example_sets
        model = EmpiricalAverage().fit(train)
        predictions = model.predict(test)
        assert np.isfinite(predictions).all()
        assert (predictions >= 0).all()
