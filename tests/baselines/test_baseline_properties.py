"""Property-based tests for the baseline learners' algebraic invariances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    LassoRegressor,
    RandomForestRegressor,
)


def make_data(seed, n=200, f=4):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, f))
    y = x @ rng.normal(size=f) + np.sin(x[:, 0]) + rng.normal(0, 0.2, n)
    return x, y


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_tree_invariant_under_monotone_feature_transform(seed):
    """Quantile binning only sees feature *order*: a strictly increasing
    transform of any feature leaves the fitted tree's predictions unchanged."""
    x, y = make_data(seed)
    tree_a = DecisionTreeRegressor(max_depth=4).fit(x, y)
    x_transformed = x.copy()
    x_transformed[:, 0] = np.exp(x[:, 0])          # strictly increasing
    x_transformed[:, 1] = x[:, 1] ** 3             # strictly increasing
    tree_b = DecisionTreeRegressor(max_depth=4).fit(x_transformed, y)
    np.testing.assert_allclose(tree_a.predict(x), tree_b.predict(x_transformed))


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.floats(min_value=-100.0, max_value=100.0),
)
def test_gbdt_equivariant_under_target_shift(seed, shift):
    """Shifting y by a constant shifts every prediction by that constant
    (the base prediction absorbs it; residuals are unchanged)."""
    x, y = make_data(seed)
    a = GradientBoostingRegressor(n_estimators=10, max_depth=3, seed=0).fit(x, y)
    b = GradientBoostingRegressor(n_estimators=10, max_depth=3, seed=0).fit(
        x, y + shift
    )
    np.testing.assert_allclose(a.predict(x) + shift, b.predict(x), atol=1e-8)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_forest_predictions_within_target_range(seed):
    """Tree leaves hold means of training targets, so ensemble predictions
    can never leave [min(y), max(y)]."""
    x, y = make_data(seed)
    model = RandomForestRegressor(n_estimators=5, max_depth=6, seed=0).fit(x, y)
    predictions = model.predict(x)
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_lasso_l1_norm_monotone_in_alpha(seed):
    """Stronger regularisation never grows the coefficient L1 norm."""
    x, y = make_data(seed)
    norms = []
    for alpha in (0.001, 0.1, 1.0, 10.0):
        model = LassoRegressor(alpha=alpha, max_iter=300).fit(x, y)
        norms.append(np.abs(model.coef_).sum())
    assert all(a >= b - 1e-9 for a, b in zip(norms, norms[1:]))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_lasso_prediction_shift_equivariance(seed):
    """Shifting y shifts predictions via the intercept only."""
    x, y = make_data(seed)
    a = LassoRegressor(alpha=0.1, max_iter=300).fit(x, y)
    b = LassoRegressor(alpha=0.1, max_iter=300).fit(x, y + 5.0)
    np.testing.assert_allclose(a.predict(x) + 5.0, b.predict(x), atol=1e-6)
    np.testing.assert_allclose(a.coef_, b.coef_, atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_tree_prediction_is_weighted_mean_preserving(seed):
    """The average tree prediction equals the target mean on training data
    (each leaf predicts its members' mean)."""
    x, y = make_data(seed)
    tree = DecisionTreeRegressor(max_depth=5).fit(x, y)
    np.testing.assert_allclose(tree.predict(x).mean(), y.mean(), rtol=1e-9)
