"""Tests for the LASSO coordinate-descent implementation."""

import numpy as np
import pytest

from repro.baselines import LassoRegressor, soft_threshold
from repro.exceptions import NotFittedError


RNG = np.random.default_rng(3)


class TestSoftThreshold:
    def test_above(self):
        assert soft_threshold(3.0, 1.0) == 2.0

    def test_below(self):
        assert soft_threshold(-3.0, 1.0) == -2.0

    def test_inside_dead_zone(self):
        assert soft_threshold(0.5, 1.0) == 0.0
        assert soft_threshold(-0.5, 1.0) == 0.0

    def test_boundary(self):
        assert soft_threshold(1.0, 1.0) == 0.0


class TestLasso:
    def _toy(self, n=300, noise=0.01):
        x = RNG.normal(size=(n, 5))
        true_coef = np.array([2.0, -1.5, 0.0, 0.0, 0.5])
        y = x @ true_coef + 1.0 + RNG.normal(0, noise, n)
        return x, y, true_coef

    def test_recovers_coefficients_at_small_alpha(self):
        x, y, true_coef = self._toy()
        model = LassoRegressor(alpha=1e-4, max_iter=500).fit(x, y)
        np.testing.assert_allclose(model.coef_, true_coef, atol=0.05)
        assert model.intercept_ == pytest.approx(1.0, abs=0.05)

    def test_alpha_zero_is_least_squares(self):
        x, y, _ = self._toy(noise=0.0)
        model = LassoRegressor(alpha=0.0, max_iter=1000, tol=1e-10).fit(x, y)
        # Perfect fit on noiseless data.
        np.testing.assert_allclose(model.predict(x), y, atol=1e-6)

    def test_sparsity_increases_with_alpha(self):
        x, y, _ = self._toy()
        weak = LassoRegressor(alpha=0.01, max_iter=300).fit(x, y)
        strong = LassoRegressor(alpha=1.0, max_iter=300).fit(x, y)
        assert strong.sparsity() >= weak.sparsity()

    def test_huge_alpha_kills_all_coefficients(self):
        x, y, _ = self._toy()
        model = LassoRegressor(alpha=1e6).fit(x, y)
        np.testing.assert_array_equal(model.coef_, np.zeros(5))
        # Prediction collapses to the intercept (= mean of y).
        np.testing.assert_allclose(model.predict(x), np.full(len(y), y.mean()))

    def test_kkt_conditions_hold(self):
        """At the optimum: |X_j'r/n| <= alpha for zero coefs, == alpha for
        active coefs (stationarity of the LASSO objective)."""
        x, y, _ = self._toy()
        alpha = 0.1
        model = LassoRegressor(alpha=alpha, max_iter=2000, tol=1e-12).fit(x, y)
        residual = y - model.predict(x)
        n = len(y)
        for j in range(x.shape[1]):
            correlation = x[:, j] @ residual / n
            if model.coef_[j] == 0.0:
                assert abs(correlation) <= alpha + 1e-6
            else:
                assert correlation == pytest.approx(
                    alpha * np.sign(model.coef_[j]), abs=1e-6
                )

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LassoRegressor().predict(np.ones((2, 3)))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            LassoRegressor(alpha=-1.0)
        with pytest.raises(ValueError):
            LassoRegressor(max_iter=0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            LassoRegressor().fit(np.ones(5), np.ones(5))
        with pytest.raises(ValueError):
            LassoRegressor().fit(np.ones((5, 2)), np.ones(4))
        with pytest.raises(ValueError):
            LassoRegressor().fit(np.ones((0, 2)), np.ones(0))

    def test_constant_feature_ignored(self):
        x, y, _ = self._toy()
        x = np.hstack([x, np.ones((len(y), 1))])
        model = LassoRegressor(alpha=0.01, max_iter=200).fit(x, y)
        # The constant column carries no signal beyond the intercept.
        assert np.isfinite(model.coef_).all()

    def test_no_intercept_mode(self):
        x = RNG.normal(size=(200, 3))
        y = x @ np.array([1.0, 2.0, 3.0])
        model = LassoRegressor(alpha=1e-5, fit_intercept=False, max_iter=500).fit(x, y)
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(model.coef_, [1.0, 2.0, 3.0], atol=0.01)
