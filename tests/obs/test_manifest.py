"""Tests for run manifests: stage timing, round-trip, report rendering."""

import json

import pytest

from repro.cli import main
from repro.obs import MANIFEST_SUFFIX, RunManifest, describe_version


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestStageTiming:
    def test_stage_context_manager_uses_injected_clock(self):
        manifest = RunManifest.begin("test", clock=FakeClock(step=2.0))
        with manifest.stage("simulate"):
            pass
        with manifest.stage("save"):
            pass
        assert manifest.stages == [
            {"name": "simulate", "seconds": 2.0},
            {"name": "save", "seconds": 2.0},
        ]
        assert manifest.total_seconds == 4.0

    def test_stage_recorded_on_exception(self):
        manifest = RunManifest.begin("test", clock=FakeClock())
        with pytest.raises(RuntimeError):
            with manifest.stage("boom"):
                raise RuntimeError("boom")
        assert manifest.stages[0]["name"] == "boom"


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        manifest = RunManifest.begin(
            "simulate", config={"scale": "tiny"}, seed=7, clock=FakeClock()
        )
        with manifest.stage("simulate"):
            pass
        manifest.record(n_orders=123, rmse=6.5)
        manifest.artifacts["city"] = "city.npz"
        path = manifest.write(artifact=tmp_path / "city.npz")
        assert path.endswith("city.npz" + MANIFEST_SUFFIX)

        loaded = RunManifest.load(path)
        assert loaded.command == "simulate"
        assert loaded.config == {"scale": "tiny"}
        assert loaded.seed == 7
        assert loaded.version == manifest.version
        assert loaded.stages == manifest.stages
        assert loaded.metrics == {"n_orders": 123, "rmse": 6.5}
        assert loaded.artifacts == {"city": "city.npz"}

    def test_written_json_is_valid_and_sorted(self, tmp_path):
        manifest = RunManifest.begin("x", clock=FakeClock())
        path = manifest.write(tmp_path / "m.json")
        payload = json.loads((tmp_path / "m.json").read_text())
        assert payload["schema_version"] == 2
        assert "created_at" in payload
        assert path == str(tmp_path / "m.json")

    def test_write_requires_a_destination(self):
        with pytest.raises(ValueError):
            RunManifest.begin("x").write()

    def test_resume_provenance_round_trips(self, tmp_path):
        manifest = RunManifest.begin("train", clock=FakeClock())
        assert manifest.resume is None
        manifest.mark_resumed("ckpt/ckpt-00003.json", 3)
        path = manifest.write(tmp_path / "m.json")
        loaded = RunManifest.load(path)
        assert loaded.resume == {"from": "ckpt/ckpt-00003.json", "epoch": 3}


class TestVersion:
    def test_describe_version_nonempty(self):
        assert describe_version()


class TestReportCommand:
    def test_report_renders_stages_and_metrics(self, tmp_path, capsys):
        manifest = RunManifest.begin(
            "train", config={"scale": "tiny"}, seed=1, clock=FakeClock(step=0.5)
        )
        with manifest.stage("fit"):
            pass
        manifest.record(rmse=6.381, mae=3.375)
        path = manifest.write(artifact=tmp_path / "weights.npz")

        assert main(["report", path, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Stage timings" in out
        assert "fit" in out
        assert "total" in out
        assert "Final metrics" in out
        assert "rmse" in out
        assert "6.3810" in out

    def test_report_many_manifests(self, tmp_path, capsys):
        paths = []
        for command in ("simulate", "featurize"):
            manifest = RunManifest.begin(command, clock=FakeClock())
            with manifest.stage(command):
                pass
            paths.append(manifest.write(tmp_path / f"{command}.json"))
        assert main(["report", *paths, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "simulate" in out and "featurize" in out
