"""Tracer unit tests: nesting, ring bounds, disabled cost, export format."""

import json
import threading

import pytest

from repro.obs import (
    Span,
    Tracer,
    configure_tracing,
    get_tracer,
    load_chrome_trace,
    resolve_tracer,
    set_tracer,
    summarize_spans,
)


class FakeClock:
    """Monotonic clock advancing a fixed step per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestNesting:
    def test_child_inherits_trace_and_parent(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()[0], tracer.spans()[1]
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.trace_id == outer.span_id  # root starts the trace

    def test_siblings_share_parent_not_ids(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, outer = tracer.spans()
        assert a.parent_id == b.parent_id == outer.span_id
        assert a.span_id != b.span_id

    def test_context_restored_after_exit(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() == outer.context
        assert tracer.current() is None

    def test_exception_recorded_and_context_reset(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert tracer.current() is None
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"

    def test_set_attaches_attributes(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("op", preset=1) as span:
            span.set(cached=True)
        (recorded,) = tracer.spans()
        assert recorded.attrs == {"preset": 1, "cached": True}


class TestCrossThread:
    def test_explicit_parent_links_across_threads(self):
        """The MicroBatcher pattern: capture current() at submit, pass it
        as parent= on the worker — new threads see an empty context."""
        tracer = Tracer(clock=FakeClock(), enabled=True)
        captured = {}

        def worker(parent):
            captured["on_worker"] = tracer.current()
            with tracer.span("worker.op", parent=parent):
                pass

        with tracer.span("request") as request:
            thread = threading.Thread(target=worker, args=(tracer.current(),))
            thread.start()
            thread.join()
        # The worker thread starts context-free...
        assert captured["on_worker"] is None
        worker_span = next(s for s in tracer.spans() if s.name == "worker.op")
        request_span = next(s for s in tracer.spans() if s.name == "request")
        # ...yet its span is stitched into the submitting trace.
        assert worker_span.trace_id == request_span.trace_id
        assert worker_span.parent_id == request_span.span_id
        assert request.context.span_id == request_span.span_id

    def test_record_premeasured_span(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("request") as request:
            parent = tracer.current()
        tracer.record("queue_wait", start=10.0, duration=2.5, parent=parent)
        wait = next(s for s in tracer.spans() if s.name == "queue_wait")
        assert wait.start == 10.0 and wait.duration == 2.5
        assert wait.parent_id == request.context.span_id


class TestRingBuffer:
    def test_wraparound_keeps_newest_and_counts_dropped(self):
        tracer = Tracer(capacity=4, clock=FakeClock(), enabled=True)
        for index in range(10):
            with tracer.span(f"op{index}"):
                pass
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [span.name for span in tracer.spans()] == [
            "op6", "op7", "op8", "op9",
        ]

    def test_limit_returns_newest(self):
        tracer = Tracer(capacity=8, clock=FakeClock(), enabled=True)
        for index in range(5):
            with tracer.span(f"op{index}"):
                pass
        assert [s.name for s in tracer.spans(limit=2)] == ["op3", "op4"]
        assert tracer.spans(limit=0) == []

    def test_clear(self):
        tracer = Tracer(capacity=4, clock=FakeClock(), enabled=True)
        with tracer.span("op"):
            pass
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestDisabled:
    def test_zero_side_effects(self):
        tracer = Tracer(clock=FakeClock(), enabled=False)
        with tracer.span("op", attr=1) as span:
            span.set(more=2)
            with tracer.span("inner"):
                assert tracer.current() is None
        tracer.record("premeasured", start=0.0, duration=1.0)
        assert len(tracer) == 0
        assert tracer.spans() == []
        assert tracer.dropped == 0

    def test_disabled_span_is_shared_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")


class TestExport:
    def _traced(self):
        tracer = Tracer(clock=FakeClock(step=0.5), enabled=True)
        with tracer.span("outer", n=3):
            with tracer.span("inner"):
                pass
        return tracer

    def test_chrome_events_are_complete_events(self):
        events = self._traced().to_chrome_events()
        assert all(event["ph"] == "X" for event in events)
        assert all(event["cat"] == "repro" for event in events)
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["dur"] == 0.5e6  # FakeClock steps are 0.5s → µs

    def test_export_is_valid_json_one_event_per_line(self, tmp_path):
        path = str(tmp_path / "trace.json")
        self._traced().export(path)
        with open(path) as handle:
            text = handle.read()
        events = json.loads(text)
        assert len(events) == 2
        lines = text.strip().splitlines()
        assert lines[0] == "[" and lines[-1] == "]"
        assert len(lines) == len(events) + 2

    def test_round_trip_preserves_tree(self, tmp_path):
        tracer = self._traced()
        path = str(tmp_path / "trace.json")
        tracer.export(path)
        loaded = load_chrome_trace(path)
        by_name = {span.name: span for span in loaded}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].trace_id == by_name["outer"].trace_id
        assert by_name["outer"].attrs == {"n": 3}

    def test_load_rejects_malformed_events(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump([{"ph": "B", "name": "open-ended"}], handle)
        with pytest.raises(ValueError):
            load_chrome_trace(path)

    def test_load_tolerates_missing_bracket(self, tmp_path):
        """chrome://tracing accepts a truncated array; so do we."""
        path = str(tmp_path / "trace.json")
        self._traced().export(path)
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        truncated = str(tmp_path / "truncated.json")
        with open(truncated, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")  # drop the "]"
        assert len(load_chrome_trace(truncated)) == 2


class TestSummarize:
    def test_counts_percentiles_and_parent_share(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        for _ in range(3):
            with tracer.span("outer"):  # 3 ticks: inner + its own
                with tracer.span("inner"):  # 1 tick each
                    pass
        rows = {row["name"]: row for row in summarize_spans(tracer.spans())}
        assert rows["inner"]["count"] == 3
        assert rows["inner"]["p50_ms"] == 1000.0  # one 1s FakeClock tick
        assert rows["outer"]["pct_of_parent"] is None  # roots
        assert rows["inner"]["pct_of_parent"] == pytest.approx(100 * 3 / 9)
        # Sorted by total time, descending: outer dominates.
        assert summarize_spans(tracer.spans())[0]["name"] == "outer"

    def test_parent_counted_once_for_many_children(self):
        """4 inner spans under ONE outer (9 FakeClock ticks end to end):
        the shared parent must be summed once, not once per child —
        inner is 4/9 of the outer, not 4/36."""
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("outer"):  # start + 4x(start, end) + end = 9 ticks
            for _ in range(4):
                with tracer.span("inner"):  # 1 tick each
                    pass
        rows = {row["name"]: row for row in summarize_spans(tracer.spans())}
        assert rows["inner"]["pct_of_parent"] == pytest.approx(100 * 4 / 9)

    def test_empty(self):
        assert summarize_spans([]) == []


class TestDefaultTracer:
    def test_swap_and_restore(self):
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_configure_resize_clears_ring(self):
        mine = Tracer(capacity=8, clock=FakeClock(), enabled=True)
        previous = set_tracer(mine)
        try:
            with get_tracer().span("op"):
                pass
            assert len(get_tracer()) == 1
            configure_tracing(capacity=2)
            assert len(get_tracer()) == 0
            assert get_tracer().capacity == 2
            configure_tracing(enabled=False)
            assert get_tracer().enabled is False
        finally:
            set_tracer(previous)


class TestResolveTracer:
    def test_none_is_process_default(self):
        assert resolve_tracer(None) is get_tracer()

    def test_bool_builds_private_tracer(self):
        enabled = resolve_tracer(True)
        disabled = resolve_tracer(False)
        assert enabled.enabled and not disabled.enabled
        assert enabled is not get_tracer()

    def test_tracer_passes_through(self):
        mine = Tracer()
        assert resolve_tracer(mine) is mine

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_tracer("yes")
