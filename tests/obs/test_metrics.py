"""Tests for the metrics registry: counters, histograms, timers, export."""

import json

import pytest

from repro.core import TrainingHistory
from repro.obs import MetricsRegistry, get_registry, record_training_history, set_registry


class FakeClock:
    """Monotonic clock advancing a fixed step per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestCounters:
    def test_increment_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.counter("repro.test.calls")
        registry.counter("repro.test.calls")
        assert registry.counters["repro.test.calls"] == 2.0

    def test_increment_by_value(self):
        registry = MetricsRegistry()
        registry.counter("repro.test.orders", 10)
        registry.counter("repro.test.orders", 5)
        assert registry.counters["repro.test.orders"] == 15.0


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("repro.test.rmse", 6.0)
        registry.gauge("repro.test.rmse", 5.5)
        assert registry.gauges["repro.test.rmse"] == 5.5


class TestHistograms:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("repro.test.seconds", value)
        histogram = registry.histograms["repro.test.seconds"]
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.mean == 2.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0

    def test_empty_histogram_mean_is_zero(self):
        from repro.obs import Histogram

        assert Histogram().mean == 0.0
        assert Histogram().as_dict()["min"] is None
        assert Histogram().as_dict()["p99"] is None

    def test_quantiles_within_sketch_error(self):
        """Log-bucket sketch: estimates within one bucket (~12% relative)."""
        from repro.obs import Histogram

        histogram = Histogram()
        values = [0.001 * i for i in range(1, 1001)]  # 1ms .. 1s uniform
        for value in values:
            histogram.observe(value)
        for q in (0.50, 0.95, 0.99):
            exact = values[int(q * len(values)) - 1]
            estimate = histogram.quantile(q)
            assert abs(estimate - exact) <= 0.15 * exact, (q, estimate, exact)

    def test_quantiles_clamped_to_observed_range(self):
        from repro.obs import Histogram

        histogram = Histogram()
        histogram.observe(3.0)
        assert histogram.p50 == 3.0
        assert histogram.p99 == 3.0
        assert histogram.quantile(0.0) == 3.0

    def test_nonpositive_values_underflow_safely(self):
        from repro.obs import Histogram

        histogram = Histogram()
        histogram.observe(0.0)
        histogram.observe(-1.0)
        assert histogram.count == 2
        assert histogram.min == -1.0
        assert histogram.quantile(0.5) <= 0.0  # clamped to observed max=0


class TestTimer:
    def test_context_manager_with_fake_clock(self):
        registry = MetricsRegistry(clock=FakeClock(step=2.5))
        with registry.timer("repro.test.block") as timer:
            pass
        assert timer.elapsed == 2.5
        assert registry.histograms["repro.test.block"].total == 2.5

    def test_decorator_records_each_call(self):
        registry = MetricsRegistry(clock=FakeClock(step=1.0))

        @registry.timer("repro.test.fn")
        def double(x):
            return 2 * x

        assert double(3) == 6
        assert double(4) == 8
        assert registry.histograms["repro.test.fn"].count == 2

    def test_records_on_exception(self):
        registry = MetricsRegistry(clock=FakeClock())
        with pytest.raises(ValueError):
            with registry.timer("repro.test.boom"):
                raise ValueError("boom")
        assert registry.histograms["repro.test.boom"].count == 1

    def test_elapsed_available_when_disabled(self):
        registry = MetricsRegistry(clock=FakeClock(step=3.0), enabled=False)
        with registry.timer("repro.test.off") as timer:
            pass
        assert timer.elapsed == 3.0
        assert "repro.test.off" not in registry.histograms


class TestDisabled:
    def test_all_recording_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a")
        registry.gauge("b", 1.0)
        registry.observe("c", 1.0)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestExport:
    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.counter("repro.test.n", 3)
        registry.gauge("repro.test.g", 1.5)
        registry.observe("repro.test.h", 2.0)
        payload = json.loads(registry.to_json())
        assert payload["counters"]["repro.test.n"] == 3.0
        assert payload["gauges"]["repro.test.g"] == 1.5
        assert payload["histograms"]["repro.test.h"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x")
        registry.observe("y", 1.0)
        registry.reset()
        assert registry.counters == {}
        assert registry.histograms == {}

    def test_prometheus_exposition(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.counter("repro.serving.requests", 3)
        registry.gauge("repro.serving.batcher.queue_depth", 2)
        for value in (0.010, 0.020, 0.030):
            registry.observe("repro.serving.request_seconds", value)
        text = registry.to_prometheus()
        assert text.endswith("\n")
        assert "# TYPE repro_serving_requests counter" in text
        assert "repro_serving_requests 3.0" in text
        assert "# TYPE repro_serving_batcher_queue_depth gauge" in text
        assert "# TYPE repro_serving_request_seconds summary" in text
        assert 'repro_serving_request_seconds{quantile="0.5"}' in text
        assert 'repro_serving_request_seconds{quantile="0.95"}' in text
        assert 'repro_serving_request_seconds{quantile="0.99"}' in text
        assert "repro_serving_request_seconds_count 3" in text
        # Sum formats as a plain float, parseable by a scraper.
        sum_line = next(
            line for line in text.splitlines()
            if line.startswith("repro_serving_request_seconds_sum ")
        )
        assert float(sum_line.split()[-1]) == pytest.approx(0.060)

    def test_prometheus_sanitizes_names(self):
        registry = MetricsRegistry()
        registry.counter("1weird-name.with/chars", 1)
        text = registry.to_prometheus()
        assert "_1weird_name_with_chars 1.0" in text


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestTrainingHistoryBridge:
    def test_records_gauges_and_epoch_seconds(self):
        registry = MetricsRegistry()
        history = TrainingHistory(
            train_loss=[5.0, 3.0],
            eval_mae=[2.0, 1.5],
            eval_rmse=[4.0, 3.5],
            epoch_seconds=[0.5, 0.7],
        )
        record_training_history(history, registry)
        assert registry.gauges["repro.train.epochs"] == 2
        assert registry.gauges["repro.train.final_loss"] == 3.0
        assert registry.gauges["repro.train.best_rmse"] == 3.5
        assert registry.gauges["repro.train.best_mae"] == 1.5
        assert registry.histograms["repro.train.epoch_seconds"].count == 2

    def test_disabled_registry_stays_empty(self):
        registry = MetricsRegistry(enabled=False)
        record_training_history(TrainingHistory(train_loss=[1.0]), registry)
        assert registry.gauges == {}
