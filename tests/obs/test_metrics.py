"""Tests for the metrics registry: counters, histograms, timers, export."""

import json

import pytest

from repro.core import TrainingHistory
from repro.obs import MetricsRegistry, get_registry, record_training_history, set_registry


class FakeClock:
    """Monotonic clock advancing a fixed step per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestCounters:
    def test_increment_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.counter("repro.test.calls")
        registry.counter("repro.test.calls")
        assert registry.counters["repro.test.calls"] == 2.0

    def test_increment_by_value(self):
        registry = MetricsRegistry()
        registry.counter("repro.test.orders", 10)
        registry.counter("repro.test.orders", 5)
        assert registry.counters["repro.test.orders"] == 15.0


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("repro.test.rmse", 6.0)
        registry.gauge("repro.test.rmse", 5.5)
        assert registry.gauges["repro.test.rmse"] == 5.5


class TestHistograms:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("repro.test.seconds", value)
        histogram = registry.histograms["repro.test.seconds"]
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.mean == 2.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0

    def test_empty_histogram_mean_is_zero(self):
        from repro.obs import Histogram

        assert Histogram().mean == 0.0
        assert Histogram().as_dict()["min"] is None


class TestTimer:
    def test_context_manager_with_fake_clock(self):
        registry = MetricsRegistry(clock=FakeClock(step=2.5))
        with registry.timer("repro.test.block") as timer:
            pass
        assert timer.elapsed == 2.5
        assert registry.histograms["repro.test.block"].total == 2.5

    def test_decorator_records_each_call(self):
        registry = MetricsRegistry(clock=FakeClock(step=1.0))

        @registry.timer("repro.test.fn")
        def double(x):
            return 2 * x

        assert double(3) == 6
        assert double(4) == 8
        assert registry.histograms["repro.test.fn"].count == 2

    def test_records_on_exception(self):
        registry = MetricsRegistry(clock=FakeClock())
        with pytest.raises(ValueError):
            with registry.timer("repro.test.boom"):
                raise ValueError("boom")
        assert registry.histograms["repro.test.boom"].count == 1

    def test_elapsed_available_when_disabled(self):
        registry = MetricsRegistry(clock=FakeClock(step=3.0), enabled=False)
        with registry.timer("repro.test.off") as timer:
            pass
        assert timer.elapsed == 3.0
        assert "repro.test.off" not in registry.histograms


class TestDisabled:
    def test_all_recording_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a")
        registry.gauge("b", 1.0)
        registry.observe("c", 1.0)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestExport:
    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.counter("repro.test.n", 3)
        registry.gauge("repro.test.g", 1.5)
        registry.observe("repro.test.h", 2.0)
        payload = json.loads(registry.to_json())
        assert payload["counters"]["repro.test.n"] == 3.0
        assert payload["gauges"]["repro.test.g"] == 1.5
        assert payload["histograms"]["repro.test.h"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x")
        registry.reset()
        assert registry.counters == {}


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestTrainingHistoryBridge:
    def test_records_gauges_and_epoch_seconds(self):
        registry = MetricsRegistry()
        history = TrainingHistory(
            train_loss=[5.0, 3.0],
            eval_mae=[2.0, 1.5],
            eval_rmse=[4.0, 3.5],
            epoch_seconds=[0.5, 0.7],
        )
        record_training_history(history, registry)
        assert registry.gauges["repro.train.epochs"] == 2
        assert registry.gauges["repro.train.final_loss"] == 3.0
        assert registry.gauges["repro.train.best_rmse"] == 3.5
        assert registry.gauges["repro.train.best_mae"] == 1.5
        assert registry.histograms["repro.train.epoch_seconds"].count == 2

    def test_disabled_registry_stays_empty(self):
        registry = MetricsRegistry(enabled=False)
        record_training_history(TrainingHistory(train_loss=[1.0]), registry)
        assert registry.gauges == {}
