"""Tests for structured logging: formats, events, configuration."""

import io
import json
import logging

import pytest

from repro.obs import (
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
    parse_level,
)
from repro.obs.logging import ROOT_LOGGER


@pytest.fixture(autouse=True)
def restore_logging():
    """Restore the silent library default after every test here."""
    yield
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)
            handler.close()
    root.setLevel(logging.NOTSET)
    root.propagate = True


@pytest.fixture()
def capture():
    """Configure the repro logger tree into an in-memory stream."""
    stream = io.StringIO()

    def _configure(level="info", fmt="kv"):
        configure_logging(level=level, fmt=fmt, stream=stream)
        return stream

    return _configure


class TestParseLevel:
    def test_names_and_ints(self):
        assert parse_level("debug") == logging.DEBUG
        assert parse_level("INFO") == logging.INFO
        assert parse_level(logging.ERROR) == logging.ERROR

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            parse_level("loud")


class TestKeyValueFormat:
    def test_event_renders_fields(self, capture):
        stream = capture(level="info", fmt="kv")
        get_logger("tests.kv").event("stage.done", items=42, rmse=6.27)
        line = stream.getvalue().strip()
        assert "level=info" in line
        assert "logger=repro.tests.kv" in line
        assert "event=stage.done" in line
        assert "items=42" in line
        assert "rmse=6.27" in line

    def test_values_with_spaces_are_quoted(self, capture):
        stream = capture()
        get_logger("tests.kv").event("note", path="a file.npz")
        assert 'path="a file.npz"' in stream.getvalue()

    def test_plain_messages_pass_through(self, capture):
        stream = capture()
        get_logger("tests.kv").warning("something odd", area=3)
        line = stream.getvalue().strip()
        assert "level=warning" in line
        assert 'msg="something odd"' in line
        assert "area=3" in line


class TestJsonFormat:
    def test_one_json_object_per_line(self, capture):
        stream = capture(level="debug", fmt="json")
        logger = get_logger("tests.json")
        logger.event("a", level=logging.DEBUG, x=1)
        logger.event("b", y=2.5)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["event"] == "a" and first["x"] == 1
        assert first["level"] == "debug"
        assert second["event"] == "b" and second["y"] == 2.5


class TestLevels:
    def test_events_below_threshold_are_dropped(self, capture):
        stream = capture(level="warning")
        logger = get_logger("tests.levels")
        logger.event("hidden")                 # info < warning
        logger.event("shown", level=logging.ERROR)
        output = stream.getvalue()
        assert "hidden" not in output
        assert "shown" in output

    def test_is_enabled_for_guard(self, capture):
        capture(level="warning")
        assert not get_logger("tests.levels").isEnabledFor(logging.INFO)
        assert get_logger("tests.levels").isEnabledFor(logging.ERROR)


class TestConfigure:
    def test_reconfiguring_replaces_handler(self, capture):
        stream = capture()
        configure_logging(level="info", stream=stream)
        configure_logging(level="info", stream=stream)
        get_logger("tests.cfg").event("once")
        assert stream.getvalue().count("event=once") == 1

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(fmt="yaml")

    def test_log_file_sink(self, tmp_path):
        path = tmp_path / "run.log"
        handler = configure_logging(level="debug", file=str(path))
        get_logger("tests.cfg").event("to.file", k=1)
        handler.flush()
        assert "event=to.file" in path.read_text()

    def test_unconfigured_library_is_silent(self):
        # The repro root carries a NullHandler; emitting an event without
        # configure_logging must not raise or print handler warnings.
        get_logger("tests.silent").event("quiet", level=logging.ERROR)
