"""Fault-tolerant training: checkpoint/resume equivalence and best-k spill."""

import json
import os

import numpy as np
import pytest

from repro.core import (
    BasicDeepSD,
    BestSnapshots,
    Checkpoint,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    config_fingerprint,
)
from repro.exceptions import ConfigError


def make_trainer(train_set, scale, **config_kwargs):
    defaults = dict(epochs=6, best_k=2, seed=3)
    defaults.update(config_kwargs)
    model = BasicDeepSD(train_set.n_areas, scale.features.window_minutes, seed=3)
    ticks = iter(float(i) for i in range(10_000))
    return Trainer(
        model, TrainingConfig(**defaults), clock=lambda: next(ticks)
    )


def assert_states_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


class TestCrashResumeEquivalence:
    @pytest.fixture(scope="class")
    def straight(self, train_set, test_set, scale):
        trainer = make_trainer(train_set, scale)
        history = trainer.fit(train_set, eval_set=test_set)
        return trainer, history

    def test_killed_and_resumed_run_matches_bitwise(
        self, straight, train_set, test_set, scale, tmp_path
    ):
        """Train 6 epochs straight vs. kill after 3 + resume: identical
        final weights, history and best-k ensemble (the ISSUE's acceptance
        criterion)."""
        trainer_a, history_a = straight
        ckpt_dir = tmp_path / "ckpt"

        partial = make_trainer(train_set, scale)
        partial_history = partial.fit(
            train_set,
            eval_set=test_set,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=1,
            stop_after_epoch=3,
        )
        assert partial_history.n_epochs == 3

        resumed = make_trainer(train_set, scale)
        history_b = resumed.fit(
            train_set,
            eval_set=test_set,
            checkpoint_dir=ckpt_dir,
            resume_from=ckpt_dir,
        )
        assert resumed.resumed_epoch == 3
        assert resumed.resumed_from.endswith("ckpt-00003.json")

        assert history_b.to_dict() == history_a.to_dict()
        assert_states_equal(trainer_a.model.state_dict(), resumed.model.state_dict())
        assert len(resumed._ensemble_states) == len(trainer_a._ensemble_states)
        for state_a, state_b in zip(
            trainer_a._ensemble_states, resumed._ensemble_states
        ):
            assert_states_equal(state_a, state_b)
        np.testing.assert_array_equal(
            trainer_a.predict(test_set), resumed.predict(test_set)
        )

    def test_resume_with_sparse_checkpoints(
        self, straight, train_set, test_set, scale, tmp_path
    ):
        """A kill between checkpoints resumes from the last boundary and
        re-trains forward to the same final state."""
        trainer_a, _ = straight
        ckpt_dir = tmp_path / "sparse"

        partial = make_trainer(train_set, scale)
        partial.fit(
            train_set,
            eval_set=test_set,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=2,
            stop_after_epoch=3,
        )
        # stop_after forces a drain checkpoint at epoch 3; drop it to
        # simulate a hard kill that only left the epoch-2 boundary bundle.
        for name in os.listdir(ckpt_dir):
            if "00003" in name:
                os.remove(ckpt_dir / name)
        (ckpt_dir / "latest.json").write_text('{"latest": "ckpt-00002"}')

        resumed = make_trainer(train_set, scale)
        resumed.fit(
            train_set,
            eval_set=test_set,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=2,
            resume_from=ckpt_dir,
        )
        assert resumed.resumed_epoch == 2
        assert_states_equal(trainer_a.model.state_dict(), resumed.model.state_dict())

    def test_resume_into_memory_only_run(
        self, straight, train_set, test_set, scale, tmp_path
    ):
        """resume_from works without further checkpointing (spilled best-k
        snapshots are pulled back into memory)."""
        trainer_a, _ = straight
        ckpt_dir = tmp_path / "mem"
        partial = make_trainer(train_set, scale)
        partial.fit(
            train_set, eval_set=test_set,
            checkpoint_dir=ckpt_dir, stop_after_epoch=3,
        )
        resumed = make_trainer(train_set, scale)
        resumed.fit(train_set, eval_set=test_set, resume_from=ckpt_dir)
        assert resumed.last_checkpoint is None
        assert_states_equal(trainer_a.model.state_dict(), resumed.model.state_dict())

    def test_fingerprint_mismatch_rejected(self, train_set, test_set, scale, tmp_path):
        ckpt_dir = tmp_path / "fp"
        partial = make_trainer(train_set, scale)
        partial.fit(
            train_set, eval_set=test_set,
            checkpoint_dir=ckpt_dir, stop_after_epoch=2,
        )
        other = make_trainer(train_set, scale, learning_rate=5e-4)
        with pytest.raises(ConfigError, match="fingerprint"):
            other.fit(train_set, eval_set=test_set, resume_from=ckpt_dir)

    def test_invalid_fit_arguments(self, train_set, scale, tmp_path):
        trainer = make_trainer(train_set, scale)
        with pytest.raises(ConfigError):
            trainer.fit(train_set, checkpoint_dir=tmp_path, checkpoint_every=0)
        with pytest.raises(ConfigError):
            trainer.fit(train_set, stop_after_epoch=0)


class TestCheckpointBundle:
    def test_atomic_layout_and_latest_pointer(
        self, train_set, test_set, scale, tmp_path
    ):
        ckpt_dir = tmp_path / "layout"
        trainer = make_trainer(train_set, scale, epochs=3)
        trainer.fit(train_set, eval_set=test_set, checkpoint_dir=ckpt_dir)
        names = sorted(os.listdir(ckpt_dir))
        assert not [n for n in names if ".tmp" in n], names
        assert "latest.json" in names
        with open(ckpt_dir / "latest.json") as handle:
            assert json.load(handle)["latest"] == "ckpt-00003"
        assert trainer.last_checkpoint == str(ckpt_dir / "ckpt-00003.json")

    def test_retention_prunes_old_bundles(self, train_set, test_set, scale, tmp_path):
        ckpt_dir = tmp_path / "retain"
        trainer = make_trainer(train_set, scale, epochs=6)
        trainer.fit(train_set, eval_set=test_set, checkpoint_dir=ckpt_dir)
        stems = sorted(
            n[:-5] for n in os.listdir(ckpt_dir)
            if n.startswith("ckpt-") and n.endswith(".json")
        )
        assert stems == ["ckpt-00004", "ckpt-00005", "ckpt-00006"]
        # Every retained bundle's best-k references must still exist.
        for stem in stems:
            with open(ckpt_dir / f"{stem}.json") as handle:
                payload = json.load(handle)
            for entry in payload["best"]:
                assert (ckpt_dir / entry["file"]).exists()

    def test_load_rejects_unknown_schema(self, train_set, test_set, scale, tmp_path):
        ckpt_dir = tmp_path / "schema"
        trainer = make_trainer(train_set, scale, epochs=2)
        trainer.fit(train_set, eval_set=test_set, checkpoint_dir=ckpt_dir)
        path = ckpt_dir / "ckpt-00002.json"
        payload = json.loads(path.read_text())
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError, match="schema"):
            Checkpoint.load(path)

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Checkpoint.load(tmp_path)

    def test_fingerprint_stable_and_sensitive(self):
        a = config_fingerprint(TrainingConfig(epochs=5, seed=1))
        b = config_fingerprint(TrainingConfig(epochs=5, seed=1))
        c = config_fingerprint(TrainingConfig(epochs=6, seed=1))
        assert a == b
        assert a != c

    def test_fingerprint_of_callable_loss_is_process_independent(self):
        from repro.nn.losses import mse_loss

        fp = config_fingerprint(TrainingConfig(loss=mse_loss))
        assert fp == config_fingerprint(TrainingConfig(loss=mse_loss))
        assert fp != config_fingerprint(TrainingConfig(loss="mse"))


class TestBestSnapshots:
    def state(self, value):
        return {"w": np.full(3, float(value))}

    def test_memory_bounded_by_k(self):
        tracker = BestSnapshots(k=2)
        for epoch, score in enumerate([9.0, 7.0, 8.0, 3.0, 5.0, 1.0]):
            tracker.update(epoch, score, self.state(epoch))
        assert len(tracker) == 2
        assert len(tracker._states) == 2
        assert tracker.best_epochs() == [5, 3]

    def test_matches_training_history_selection(self):
        """The running top-k must agree with a stable argsort over the full
        score list, ties resolving to the earlier epoch."""
        rng = np.random.default_rng(0)
        for _ in range(25):
            scores = [float(s) for s in rng.integers(0, 6, size=12)]
            history = TrainingHistory(train_loss=scores)
            tracker = BestSnapshots(k=4)
            for epoch, score in enumerate(scores):
                tracker.update(epoch, score, self.state(epoch))
            assert tracker.best_epochs() == history.best_epochs(4), scores

    def test_spill_and_reload(self, tmp_path):
        tracker = BestSnapshots(k=2, directory=tmp_path)
        for epoch, score in enumerate([4.0, 2.0, 3.0]):
            tracker.update(epoch, score, self.state(epoch))
        assert tracker._states == {}  # nothing retained in memory
        states = tracker.states()
        np.testing.assert_array_equal(states[0]["w"], np.full(3, 1.0))
        np.testing.assert_array_equal(states[1]["w"], np.full(3, 2.0))

    def test_restore_into_new_directory(self, tmp_path):
        source = tmp_path / "src"
        target = tmp_path / "dst"
        source.mkdir()
        target.mkdir()
        original = BestSnapshots(k=2, directory=source)
        original.update(0, 2.0, self.state(0))
        original.update(1, 1.0, self.state(1))

        rehomed = BestSnapshots(k=2, directory=target)
        rehomed.restore(original.ordered(), str(source))
        assert sorted(os.listdir(target)) == ["best-00000.npz", "best-00001.npz"]
        np.testing.assert_array_equal(
            rehomed.states()[0]["w"], original.states()[0]["w"]
        )

    def test_rejected_when_not_better(self):
        tracker = BestSnapshots(k=1)
        assert tracker.update(0, 5.0, self.state(0))
        assert not tracker.update(1, 5.0, self.state(1))  # tie keeps earlier
        assert tracker.update(2, 4.0, self.state(2))
        assert tracker.best_epochs() == [2]
