"""Golden regression: fixed-seed inputs, committed expected forward outputs.

Guards the numerics the serving layer's bitwise contract stands on: if a
refactor changes what either model computes — layer order, scaling,
residual wiring, ensemble averaging — these comparisons move and the
diff points straight at the change.  Tolerance is 1e-6 (absolute and
relative), loose enough for BLAS accumulation-order differences across
machines, tight enough to catch any real numeric change.

Regenerate after an *intentional* numeric change with:

    PYTHONPATH=src python tests/core/test_golden_forward.py

which rewrites ``tests/core/golden_forward.json`` in place.
"""

import json
import os

import numpy as np

from repro.config import EmbeddingConfig
from repro.core import AdvancedDeepSD, BasicDeepSD, InputScales, Trainer
from repro.features.builder import ExampleSet

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_forward.json")

WINDOW = 5
N_AREAS = 4
N_ITEMS = 8
SEED = 20170412  # the paper's conference year + a date — arbitrary but fixed


def synthetic_example_set() -> ExampleSet:
    """A small, fully deterministic ExampleSet (no simulator involved)."""
    rng = np.random.default_rng(SEED)
    L = WINDOW

    def counts(*shape):
        return rng.poisson(3.0, size=shape).astype(np.float32)

    example_set = ExampleSet(
        area_ids=rng.integers(0, N_AREAS, N_ITEMS),
        time_ids=rng.integers(L, 1440 - 10, N_ITEMS),
        week_ids=rng.integers(0, 7, N_ITEMS),
        day_ids=rng.integers(0, 10, N_ITEMS),
        sd_now=counts(N_ITEMS, 2 * L),
        sd_hist=counts(N_ITEMS, 7, 2 * L),
        sd_hist_next=counts(N_ITEMS, 7, 2 * L),
        lc_now=counts(N_ITEMS, 2 * L),
        lc_hist=counts(N_ITEMS, 7, 2 * L),
        lc_hist_next=counts(N_ITEMS, 7, 2 * L),
        wt_now=counts(N_ITEMS, 2 * L),
        wt_hist=counts(N_ITEMS, 7, 2 * L),
        wt_hist_next=counts(N_ITEMS, 7, 2 * L),
        weather_types=rng.integers(0, 4, (N_ITEMS, L)),
        temperature=rng.normal(0.0, 1.0, (N_ITEMS, L)).astype(np.float32),
        pm25=rng.normal(0.0, 1.0, (N_ITEMS, L)).astype(np.float32),
        traffic=counts(N_ITEMS, L, 4),
        gaps=counts(N_ITEMS),
        window=L,
        n_areas=N_AREAS,
        scalers={"temperature": (0.0, 1.0), "pm25": (0.0, 1.0)},
    )
    return example_set


def _build(model_name: str):
    cls = {"basic": BasicDeepSD, "advanced": AdvancedDeepSD}[model_name]
    model = cls(N_AREAS, WINDOW, EmbeddingConfig(), dropout=0.0, seed=7)
    model.input_scales = InputScales.from_example_set(synthetic_example_set())
    return model


def compute_outputs() -> dict:
    outputs = {}
    example_set = synthetic_example_set()
    for name in ("basic", "advanced"):
        model = _build(name)
        eval_gaps = Trainer(model).predict(example_set)
        outputs[name] = {"eval_predict": [float(v) for v in eval_gaps]}
    return outputs


def _load_golden() -> dict:
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def test_golden_metadata_matches():
    golden = _load_golden()
    assert golden["window"] == WINDOW
    assert golden["n_areas"] == N_AREAS
    assert golden["n_items"] == N_ITEMS
    assert golden["seed"] == SEED


def test_basic_forward_matches_golden():
    golden = _load_golden()["outputs"]["basic"]
    current = compute_outputs()["basic"]
    np.testing.assert_allclose(
        current["eval_predict"], golden["eval_predict"], rtol=1e-6, atol=1e-6,
        err_msg="BasicDeepSD eval-mode predictions drifted from the golden file",
    )


def test_advanced_forward_matches_golden():
    golden = _load_golden()["outputs"]["advanced"]
    current = compute_outputs()["advanced"]
    np.testing.assert_allclose(
        current["eval_predict"], golden["eval_predict"], rtol=1e-6, atol=1e-6,
        err_msg="AdvancedDeepSD eval-mode predictions drifted from the golden file",
    )


def test_float32_tape_tracks_golden():
    """Reduced-precision tape replay stays within float32 drift of golden.

    ``tape_dtype="float32"`` abandons the bitwise contract by design; this
    pins how far it is allowed to wander from the committed float64
    outputs.  A tolerance failure here means the float32 compilation path
    changed numerically, not just reordered — investigate before loosening.
    """
    golden = _load_golden()["outputs"]
    example_set = synthetic_example_set()
    for name in ("basic", "advanced"):
        model = _build(name)
        trainer = Trainer(model, use_tape=True, tape_dtype="float32")
        gaps = trainer.predict(example_set)
        np.testing.assert_allclose(
            gaps, golden[name]["eval_predict"], rtol=2e-4, atol=2e-4,
            err_msg=f"{name}: float32 taped predictions drifted beyond "
            "reduced-precision tolerance",
        )


def _regenerate() -> None:  # pragma: no cover — manual tool
    payload = {
        "window": WINDOW,
        "n_areas": N_AREAS,
        "n_items": N_ITEMS,
        "seed": SEED,
        "outputs": compute_outputs(),
    }
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
