"""Tests for the uniform-weekday-weights ablation variant."""

import numpy as np
import pytest

from repro.config import EmbeddingConfig
from repro.core import AdvancedDeepSD, ExtendedBlock
from repro.nn import Tensor

from .test_blocks import L, N_AREAS, fake_batch

EMB = EmbeddingConfig()


class TestUniformExtendedBlock:
    def test_uniform_block_forward(self):
        rng = np.random.default_rng(0)
        block = ExtendedBlock(
            "sd", L, N_AREAS, EMB, 16, rng,
            residual_input=False, uniform_weights=True,
        )
        out = block(fake_batch(4))
        assert out.shape == (4, 32)

    def test_uniform_weights_ignore_identity_inputs(self):
        """With uniform weights the output must not depend on AreaID/WeekID
        (those only feed the combiner inside the block)."""
        rng = np.random.default_rng(0)
        block = ExtendedBlock(
            "sd", L, N_AREAS, EMB, 16, rng,
            residual_input=False, uniform_weights=True,
        )
        batch = fake_batch(3)
        out_a = block(batch).data.copy()
        batch2 = dict(batch)
        batch2["area_ids"] = (batch["area_ids"] + 1) % N_AREAS
        batch2["week_ids"] = (batch["week_ids"] + 3) % 7
        out_b = block(batch2).data
        np.testing.assert_array_equal(out_a, out_b)

    def test_learned_weights_do_depend_on_identity(self):
        rng = np.random.default_rng(0)
        block = ExtendedBlock("sd", L, N_AREAS, EMB, 16, rng, residual_input=False)
        batch = fake_batch(3)
        out_a = block(batch).data.copy()
        batch2 = dict(batch)
        batch2["area_ids"] = (batch["area_ids"] + 1) % N_AREAS
        out_b = block(batch2).data
        assert not np.array_equal(out_a, out_b)

    def test_uniform_combination_is_history_mean(self):
        """E under uniform weights equals the plain mean over weekdays."""
        rng = np.random.default_rng(1)
        block = ExtendedBlock(
            "sd", L, N_AREAS, EMB, 16, rng,
            residual_input=False, uniform_weights=True,
        )
        batch = fake_batch(2)
        from repro.core import combine_history

        weights = Tensor(np.full((2, 7), 1.0 / 7.0))
        expected = combine_history(weights, batch["sd_hist"]).data
        np.testing.assert_allclose(expected, batch["sd_hist"].mean(axis=1), atol=1e-12)


class TestUniformAdvancedModel:
    def test_constructs_and_runs(self):
        model = AdvancedDeepSD(
            N_AREAS, L, seed=0, uniform_weekday_weights=True, dropout=0.0
        )
        out = model(fake_batch(5))
        assert out.shape == (5,)

    def test_uniform_weekday_weights_helper_still_distribution(self):
        # The combiner parameters exist (just unused); weekday_weights
        # still reports the (frozen) learned-layer output.
        model = AdvancedDeepSD(N_AREAS, L, seed=0, uniform_weekday_weights=True)
        weights = model.weekday_weights(0, 0)
        assert weights.sum() == pytest.approx(1.0)

    def test_gradients_flow_without_combiner(self):
        model = AdvancedDeepSD(
            N_AREAS, L, seed=0, uniform_weekday_weights=True, dropout=0.0
        )
        model(fake_batch(4)).sum().backward()
        # Projection weights get gradients...
        assert model.sd_block.projection.weight.grad is not None
        # ...but the unused combiner softmax layer does not.
        assert model.sd_block.combiner.softmax_layer.weight.grad is None
