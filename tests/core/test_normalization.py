"""Tests for input scaling and batching."""

import numpy as np
import pytest

from repro.core import INPUT_FIELDS, InputScales, batch_targets, make_batch
from repro.core.normalization import _SCALED_KEYS


class TestInputScales:
    def test_defaults_identity(self):
        scales = InputScales()
        batch = {"sd_now": np.ones((2, 4))}
        out = scales.apply(batch)
        assert out["sd_now"] is batch["sd_now"]  # factor 1.0: untouched

    def test_apply_divides(self):
        scales = InputScales(sd=2.0)
        batch = {"sd_now": np.full((2, 4), 6.0), "sd_hist": np.full((2, 7, 4), 4.0)}
        out = scales.apply(batch)
        np.testing.assert_allclose(out["sd_now"], 3.0)
        np.testing.assert_allclose(out["sd_hist"], 2.0)

    def test_apply_does_not_mutate_input(self):
        scales = InputScales(sd=2.0)
        batch = {"sd_now": np.full((2, 4), 6.0)}
        scales.apply(batch)
        np.testing.assert_allclose(batch["sd_now"], 6.0)

    def test_traffic_scaled(self):
        scales = InputScales(traffic=10.0)
        out = scales.apply({"traffic": np.full((1, 2, 4), 30.0)})
        np.testing.assert_allclose(out["traffic"], 3.0)

    def test_missing_keys_ignored(self):
        scales = InputScales(sd=2.0, lc=3.0)
        out = scales.apply({"sd_now": np.ones((1, 2))})
        assert "lc_now" not in out

    def test_from_example_set(self, train_set):
        scales = InputScales.from_example_set(train_set)
        assert scales.sd == pytest.approx(float(train_set.sd_now.std()))
        assert scales.traffic == pytest.approx(float(train_set.traffic.std()))
        assert scales.sd > 0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            InputScales(sd=0.0)
        with pytest.raises(ValueError):
            InputScales(traffic=-1.0)

    def test_scaled_keys_cover_all_count_fields(self):
        scaled = {key for keys in _SCALED_KEYS.values() for key in keys}
        count_fields = {
            f for f in INPUT_FIELDS
            if f.startswith(("sd_", "lc_", "wt_")) or f == "traffic"
        }
        assert scaled == count_fields


class TestBatching:
    def test_make_batch_full(self, train_set):
        batch = make_batch(train_set)
        assert set(batch) == set(INPUT_FIELDS)
        assert batch["sd_now"] is train_set.sd_now  # no copy without indices

    def test_make_batch_subset(self, train_set):
        indices = np.array([1, 3])
        batch = make_batch(train_set, indices)
        np.testing.assert_array_equal(batch["week_ids"], train_set.week_ids[indices])

    def test_make_batch_selected_fields(self, train_set):
        batch = make_batch(train_set, fields=("sd_now", "area_ids"))
        assert set(batch) == {"sd_now", "area_ids"}

    def test_batch_targets(self, train_set):
        np.testing.assert_array_equal(batch_targets(train_set), train_set.gaps)
        indices = np.array([0, 2])
        np.testing.assert_array_equal(
            batch_targets(train_set, indices), train_set.gaps[indices]
        )
