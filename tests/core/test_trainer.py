"""Tests for the training loop and the paper's training protocol."""

import numpy as np
import pytest

from repro.core import (
    AdvancedDeepSD,
    BasicDeepSD,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    predict_gaps,
)
from repro.exceptions import ConfigError


class TestTrainingConfig:
    def test_paper_defaults(self):
        config = TrainingConfig()
        assert config.epochs == 50
        assert config.batch_size == 64
        assert config.best_k == 10
        assert config.loss == "mse"

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrainingConfig(epochs=0)
        with pytest.raises(ConfigError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ConfigError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ConfigError):
            TrainingConfig(best_k=0)


class TestTrainingHistory:
    def test_best_epochs_by_rmse(self):
        history = TrainingHistory(
            train_loss=[5.0, 4.0, 3.0],
            eval_rmse=[10.0, 8.0, 9.0],
        )
        assert history.best_epochs(2) == [1, 2]

    def test_best_epochs_fallback_to_train_loss(self):
        history = TrainingHistory(train_loss=[5.0, 3.0, 4.0])
        assert history.best_epochs(1) == [1]

    def test_n_epochs(self):
        assert TrainingHistory(train_loss=[1.0, 2.0]).n_epochs == 2


class TestTrainer:
    @pytest.fixture(scope="class")
    def trained(self, train_set, test_set, scale):
        model = BasicDeepSD(
            train_set.n_areas, scale.features.window_minutes, seed=3
        )
        trainer = Trainer(model, TrainingConfig(epochs=5, best_k=2, seed=3))
        history = trainer.fit(train_set, eval_set=test_set)
        return trainer, history

    def test_history_lengths(self, trained):
        _, history = trained
        assert history.n_epochs == 5
        assert len(history.eval_mae) == 5
        assert len(history.eval_rmse) == 5
        assert len(history.epoch_seconds) == 5

    def test_loss_decreases(self, trained):
        _, history = trained
        assert history.train_loss[-1] < history.train_loss[0]

    def test_beats_predicting_zero(self, trained, test_set):
        trainer, _ = trained
        predictions = trainer.predict(test_set)
        rmse = np.sqrt(((predictions - test_set.gaps) ** 2).mean())
        zero_rmse = np.sqrt((test_set.gaps ** 2).mean())
        assert rmse < zero_rmse

    def test_predict_shape(self, trained, test_set):
        trainer, _ = trained
        assert trainer.predict(test_set).shape == (test_set.n_items,)

    def test_predict_deterministic(self, trained, test_set):
        trainer, _ = trained
        a = trainer.predict(test_set)
        b = trainer.predict(test_set)
        np.testing.assert_array_equal(a, b)

    def test_reproducible_given_seed(self, train_set, test_set, scale):
        def run():
            model = BasicDeepSD(
                train_set.n_areas, scale.features.window_minutes, seed=11
            )
            trainer = Trainer(model, TrainingConfig(epochs=2, best_k=1, seed=11))
            trainer.fit(train_set, eval_set=test_set)
            return trainer.predict(test_set)

        np.testing.assert_allclose(run(), run())

    def test_callback_invoked_each_epoch(self, train_set, scale):
        model = BasicDeepSD(train_set.n_areas, scale.features.window_minutes, seed=0)
        seen = []
        trainer = Trainer(model, TrainingConfig(epochs=3, best_k=1))
        trainer.fit(train_set, callback=lambda e, h: seen.append(e))
        assert seen == [0, 1, 2]

    def test_fit_without_eval_set(self, train_set, scale):
        model = BasicDeepSD(train_set.n_areas, scale.features.window_minutes, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=2, best_k=1))
        history = trainer.fit(train_set)
        assert history.eval_rmse == []
        assert history.n_epochs == 2

    def test_predict_gaps_helper_uses_live_weights(self, trained, test_set):
        trainer, _ = trained
        np.testing.assert_array_equal(
            predict_gaps(trainer.model, test_set),
            trainer._predict_current(test_set),
        )

    def test_ensemble_prediction_differs_from_single_snapshot(
        self, trained, test_set
    ):
        trainer, _ = trained
        assert len(trainer._ensemble_states) == 2
        single = trainer._predict_current(test_set)
        ensembled = trainer.predict(test_set)
        assert not np.array_equal(single, ensembled)

    def test_snapshot_memory_bounded_by_best_k(self, train_set, scale):
        """fit() must never retain more than best_k epoch snapshots."""
        model = BasicDeepSD(train_set.n_areas, scale.features.window_minutes, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=6, best_k=2, seed=0))
        trainer.fit(train_set)
        assert len(trainer._ensemble_states) == 2

    def test_predict_restores_eval_mode(self, trained, test_set):
        """Inference on a trained model must not leave dropout active."""
        trainer, _ = trained
        trainer.model.eval()
        predict_gaps(trainer.model, test_set)
        assert all(not m.training for m in trainer.model.modules())

    def test_predict_restores_train_mode(self, trained, test_set):
        trainer, _ = trained
        trainer.model.train()
        trainer.predict(test_set)
        assert all(m.training for m in trainer.model.modules())
        trainer.model.eval()


class TestInjectableClock:
    def test_epoch_seconds_deterministic_with_fake_clock(self, train_set, scale):
        ticks = iter(float(i) for i in range(100))
        model = BasicDeepSD(train_set.n_areas, scale.features.window_minutes, seed=0)
        trainer = Trainer(
            model,
            TrainingConfig(epochs=3, best_k=1),
            clock=lambda: next(ticks),
        )
        history = trainer.fit(train_set)
        # Two clock reads per epoch (start/end of the training step) ⇒
        # every epoch "lasts" exactly one tick, reproducibly.
        assert history.epoch_seconds == [1.0, 1.0, 1.0]

    def test_default_clock_is_wall_time(self, train_set, scale):
        model = BasicDeepSD(train_set.n_areas, scale.features.window_minutes, seed=0)
        trainer = Trainer(model, TrainingConfig(epochs=1, best_k=1))
        history = trainer.fit(train_set)
        assert history.epoch_seconds[0] > 0


class TestAdvancedTraining:
    def test_advanced_trains_end_to_end(self, train_set, test_set, scale):
        model = AdvancedDeepSD(
            train_set.n_areas, scale.features.window_minutes, seed=5
        )
        trainer = Trainer(model, TrainingConfig(epochs=3, best_k=1, seed=5))
        history = trainer.fit(train_set, eval_set=test_set)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_fine_tuning_converges_faster_initially(self, train_set, test_set, scale):
        """Fig. 16: starting from trained shared weights beats re-training
        for the first epochs."""
        window = scale.features.window_minutes
        base = AdvancedDeepSD(
            train_set.n_areas, window, seed=7, use_weather=False, use_traffic=False
        )
        Trainer(base, TrainingConfig(epochs=4, best_k=1, seed=7)).fit(train_set)

        grown = AdvancedDeepSD(train_set.n_areas, window, seed=8)
        grown.load_state_dict(base.state_dict(), strict=False)
        fine_tune = Trainer(grown, TrainingConfig(epochs=1, best_k=1, seed=8))
        fine_history = fine_tune.fit(train_set)

        fresh = AdvancedDeepSD(train_set.n_areas, window, seed=8)
        scratch = Trainer(fresh, TrainingConfig(epochs=1, best_k=1, seed=8))
        scratch_history = scratch.fit(train_set)

        assert fine_history.train_loss[0] < scratch_history.train_loss[0]
