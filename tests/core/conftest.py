"""Shared fixtures for model tests: one tiny featurized city."""

import pytest

from repro.city import simulate_city
from repro.config import tiny_scale
from repro.features import FeatureBuilder


@pytest.fixture(scope="session")
def scale():
    return tiny_scale()


@pytest.fixture(scope="session")
def dataset(scale):
    return simulate_city(scale.simulation)


@pytest.fixture(scope="session")
def example_sets(dataset, scale):
    return FeatureBuilder(dataset, scale.features).build()


@pytest.fixture(scope="session")
def train_set(example_sets):
    return example_sets[0]


@pytest.fixture(scope="session")
def test_set(example_sets):
    return example_sets[1]
