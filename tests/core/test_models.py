"""Tests for the BasicDeepSD and AdvancedDeepSD models."""

import numpy as np
import pytest

from repro.config import EmbeddingConfig
from repro.core import AdvancedDeepSD, BasicDeepSD, make_batch
from repro.nn import save_weights, load_weights

from .test_blocks import L, N_AREAS, fake_batch


@pytest.fixture(params=[BasicDeepSD, AdvancedDeepSD], ids=["basic", "advanced"])
def model_cls(request):
    return request.param


class TestForward:
    def test_output_shape(self, model_cls):
        model = model_cls(N_AREAS, L, seed=0)
        out = model(fake_batch(9))
        assert out.shape == (9,)

    def test_deterministic_in_eval_mode(self, model_cls):
        model = model_cls(N_AREAS, L, seed=0)
        model.eval()
        batch = fake_batch(5)
        a = model(batch).data
        b = model(batch).data
        np.testing.assert_array_equal(a, b)

    def test_training_mode_dropout_varies(self, model_cls):
        model = model_cls(N_AREAS, L, seed=0, dropout=0.5)
        model.train()
        batch = fake_batch(5)
        a = model(batch).data.copy()
        b = model(batch).data.copy()
        assert not np.array_equal(a, b)

    def test_gradients_reach_all_parameters(self, model_cls):
        model = model_cls(N_AREAS, L, seed=0, dropout=0.0)
        model(fake_batch(6)).sum().backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None
        ]
        assert missing == []

    def test_no_weather_no_traffic_variant(self, model_cls):
        model = model_cls(N_AREAS, L, seed=0, use_weather=False, use_traffic=False)
        assert model.weather_block is None
        assert model.traffic_block is None
        out = model(fake_batch(4))
        assert out.shape == (4,)

    def test_weather_only_variant(self, model_cls):
        model = model_cls(N_AREAS, L, seed=0, use_weather=True, use_traffic=False)
        out = model(fake_batch(4))
        assert out.shape == (4,)

    def test_non_residual_variant(self, model_cls):
        model = model_cls(N_AREAS, L, seed=0, residual=False)
        out = model(fake_batch(4))
        assert out.shape == (4,)

    def test_onehot_variant(self, model_cls):
        model = model_cls(N_AREAS, L, seed=0, identity_encoding="onehot")
        out = model(fake_batch(4))
        assert out.shape == (4,)

    def test_invalid_encoding(self, model_cls):
        with pytest.raises(ValueError):
            model_cls(N_AREAS, L, identity_encoding="binary")

    def test_seed_reproducibility(self, model_cls):
        a = model_cls(N_AREAS, L, seed=7)
        b = model_cls(N_AREAS, L, seed=7)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestEmbeddingAccess:
    def test_area_embedding_matrix_shape(self, model_cls):
        model = model_cls(N_AREAS, L, EmbeddingConfig(), seed=0)
        matrix = model.area_embedding_matrix()
        assert matrix.shape == (N_AREAS, EmbeddingConfig().area_dim)

    def test_onehot_has_no_embedding(self, model_cls):
        model = model_cls(N_AREAS, L, seed=0, identity_encoding="onehot")
        with pytest.raises(AttributeError):
            model.area_embedding_matrix()


class TestAdvancedSpecifics:
    def test_weekday_weights(self):
        model = AdvancedDeepSD(N_AREAS, L, seed=0)
        weights = model.weekday_weights(1, 2)
        assert weights.shape == (7,)
        assert weights.sum() == pytest.approx(1.0)

    def test_projection_dim_configurable(self):
        model = AdvancedDeepSD(N_AREAS, L, seed=0, projection_dim=8)
        assert model.sd_block.projection.out_features == 8


class TestFineTuningWorkflow:
    """Section V-C: grow a trained model with new blocks and keep weights."""

    def test_shared_blocks_load_non_strict(self, tmp_path, model_cls):
        base = model_cls(N_AREAS, L, seed=0, use_weather=False, use_traffic=False)
        path = tmp_path / "base.npz"
        save_weights(base, path)

        grown = model_cls(N_AREAS, L, seed=99, use_weather=True, use_traffic=True)
        load_weights(grown, path, strict=False)

        # Shared block weights must equal the base model's...
        np.testing.assert_array_equal(
            grown.sd_block.hidden.weight.data, base.sd_block.hidden.weight.data
        )
        np.testing.assert_array_equal(
            grown.head.hidden.weight.data, base.head.hidden.weight.data
        )
        # ...and the new environment blocks keep their fresh (seed 99) init.
        fresh = model_cls(N_AREAS, L, seed=99, use_weather=True, use_traffic=True)
        np.testing.assert_array_equal(
            grown.weather_block.hidden.weight.data,
            fresh.weather_block.hidden.weight.data,
        )

    def test_grown_model_prediction_changes_only_via_new_blocks(self, model_cls):
        """With zeroed new-block outputs, the grown model reproduces the base model."""
        base = model_cls(N_AREAS, L, seed=0, use_weather=False, use_traffic=False)
        grown = model_cls(N_AREAS, L, seed=1, use_weather=True, use_traffic=True)
        grown.load_state_dict(base.state_dict(), strict=False)
        for block in (grown.weather_block, grown.traffic_block):
            block.output.weight.data[:] = 0.0
            block.output.bias.data[:] = 0.0
        base.eval()
        grown.eval()
        batch = fake_batch(5)
        np.testing.assert_allclose(grown(batch).data, base(batch).data, atol=1e-9)


class TestMakeBatch:
    def test_subset_rows(self, train_set):
        batch = make_batch(train_set, np.array([0, 2, 4]))
        assert batch["sd_now"].shape[0] == 3
        np.testing.assert_array_equal(
            batch["area_ids"], train_set.area_ids[[0, 2, 4]]
        )

    def test_full_set(self, train_set):
        batch = make_batch(train_set)
        assert batch["sd_now"].shape[0] == train_set.n_items
