"""Quantile head unit tests: calibration, monotonicity, serialization."""

import json

import numpy as np
import pytest

from repro.core import DEFAULT_LEVELS, QuantileHead, fit_quantile_head
from repro.exceptions import ConfigError
from repro.nn.losses import get as get_loss


def test_constructor_validation():
    with pytest.raises(ConfigError, match="levels"):
        QuantileHead(levels=(0.5, 0.1))
    with pytest.raises(ConfigError, match="levels"):
        QuantileHead(levels=(0.0, 0.5))
    with pytest.raises(ConfigError, match="bucket_minutes"):
        QuantileHead(bucket_minutes=7)
    head = QuantileHead()
    assert head.levels == DEFAULT_LEVELS
    assert head.offsets.data.shape == (24, 3)


def test_bucket_ids_clip_and_divide():
    head = QuantileHead(bucket_minutes=60)
    np.testing.assert_array_equal(
        head.bucket_ids(np.array([0, 59, 60, 1439, 2000])),
        [0, 0, 1, 23, 23],
    )


def test_intervals_are_monotone_for_any_gap():
    head = QuantileHead()
    head.offsets.data[...] = np.random.default_rng(0).normal(size=(24, 3))
    head.sort_levels()
    for gap in (-5.0, 0.0, 3.7, 1e6):
        for slot in (0, 360, 720, 1439):
            band = head.intervals(gap, slot)
            assert band["p10"] <= band["p50"] <= band["p90"]
            assert band["p50"] == pytest.approx(
                gap + head.offsets.data[slot // 60, 1]
            )


def test_config_round_trip_is_bitwise():
    head = QuantileHead(levels=(0.25, 0.75), bucket_minutes=120)
    head.offsets.data[...] = np.random.default_rng(1).normal(size=(12, 2))
    config = json.loads(json.dumps(head.to_config()))
    restored = QuantileHead.from_config(config)
    assert restored.levels == head.levels
    assert restored.bucket_minutes == head.bucket_minutes
    assert restored.offsets.data.tobytes() == head.offsets.data.tobytes()


def test_from_config_rejects_shape_mismatch():
    head = QuantileHead()
    config = head.to_config()
    config["offsets"] = [[0.0, 0.0, 0.0]]
    with pytest.raises(ConfigError, match="shape"):
        QuantileHead.from_config(config)


def test_pinball_loss_name_parsing():
    loss = get_loss("pinball@0.9")
    # Pinball at q=0.9 charges under-prediction 9x over-prediction.
    import numpy as _np

    from repro.nn import Tensor

    under = loss(Tensor(_np.zeros((1, 1))), _np.ones((1, 1))).item()
    over = loss(Tensor(_np.ones((1, 1))), _np.zeros((1, 1))).item()
    assert under == pytest.approx(0.9)
    assert over == pytest.approx(0.1)
    with pytest.raises(ValueError):
        get_loss("pinball@nope")


class _ConstantTrainer:
    """Predicts zero: residuals equal the raw targets."""

    quantile_head = None

    def predict(self, example_set):
        return np.zeros(example_set.n_items, dtype=np.float64)


def _example_set_with(gaps, time_ids):
    """A minimal ExampleSet: only gaps/time_ids matter to the head."""
    from repro.features.builder import ExampleSet

    n = len(gaps)
    vec = np.zeros((n, 4), dtype=np.float64)
    return ExampleSet(
        area_ids=np.zeros(n, dtype=np.int64),
        time_ids=np.asarray(time_ids, dtype=np.int64),
        week_ids=np.zeros(n, dtype=np.int64),
        day_ids=np.zeros(n, dtype=np.int64),
        sd_now=vec, sd_hist=vec, sd_hist_next=vec,
        lc_now=vec, lc_hist=vec, lc_hist_next=vec,
        wt_now=vec, wt_hist=vec, wt_hist_next=vec,
        weather_types=np.zeros((n, 4), dtype=np.int64),
        temperature=vec, pm25=vec, traffic=vec,
        gaps=np.asarray(gaps, dtype=np.float64),
        window=4,
        n_areas=1,
    )


def test_fit_learns_bucket_quantiles():
    """On a synthetic residual distribution the fitted offsets approach
    the empirical quantiles of each bucket."""
    rng = np.random.default_rng(42)
    gaps = rng.uniform(0.0, 10.0, size=4000)
    time_ids = np.full(4000, 300, dtype=np.int64)  # one bucket (05:00)
    trainer = _ConstantTrainer()
    head = fit_quantile_head(
        trainer, _example_set_with(gaps, time_ids), epochs=600,
        learning_rate=0.2,
    )
    assert trainer.quantile_head is head
    row = head.offsets.data[300 // 60]
    # Uniform(0, 10): P10=1, P50=5, P90=9 (loose tolerance: finite steps).
    assert row[0] == pytest.approx(1.0, abs=0.6)
    assert row[1] == pytest.approx(5.0, abs=0.6)
    assert row[2] == pytest.approx(9.0, abs=0.6)
    # Untouched buckets keep zero offsets → intervals collapse to the gap.
    band = head.intervals(2.0, 0)
    assert band == {"p10": 2.0, "p50": 2.0, "p90": 2.0}


def test_fit_is_deterministic():
    gaps = np.random.default_rng(3).normal(size=500)
    time_ids = np.tile(np.array([100, 700, 1300]), 500)[:500]
    example_set = _example_set_with(gaps, time_ids)
    first = fit_quantile_head(_ConstantTrainer(), example_set, epochs=50)
    second = fit_quantile_head(_ConstantTrainer(), example_set, epochs=50)
    assert first.offsets.data.tobytes() == second.offsets.data.tobytes()
