"""Tests for the online GapPredictor.

The key consistency property: a prediction for an (area, day, timeslot)
triple that exists in a pre-built ExampleSet must equal the batch
prediction for that item — the on-demand featurization path and the bulk
builder path must agree exactly.
"""

import numpy as np
import pytest

from repro.core import BasicDeepSD, GapPredictor, GapQuery, Trainer, TrainingConfig
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def trained(dataset, scale, example_sets):
    train_set, test_set = example_sets
    model = BasicDeepSD(
        dataset.n_areas, scale.features.window_minutes, scale.embeddings,
        dropout=0.1, seed=2,
    )
    trainer = Trainer(model, TrainingConfig(epochs=3, best_k=2, seed=2))
    trainer.fit(train_set, eval_set=test_set)
    return trainer


@pytest.fixture(scope="module")
def predictor(trained, dataset, scale, example_sets):
    train_set, _ = example_sets
    return GapPredictor.from_training(
        trained, dataset, scale.features, train_set
    )


class TestConsistencyWithBuilder:
    def test_matches_batch_prediction(self, predictor, trained, example_sets):
        _, test_set = example_sets
        batch_predictions = trained.predict(test_set)
        for i in (0, len(test_set) // 2, len(test_set) - 1):
            online = predictor.predict(
                int(test_set.area_ids[i]),
                int(test_set.day_ids[i]),
                int(test_set.time_ids[i]),
            )
            assert online == pytest.approx(batch_predictions[i], rel=1e-5)

    def test_features_match_builder(self, predictor, example_sets):
        _, test_set = example_sets
        i = 7
        query = GapQuery(
            int(test_set.area_ids[i]),
            int(test_set.day_ids[i]),
            int(test_set.time_ids[i]),
        )
        online_set = predictor._featurize([query])
        np.testing.assert_allclose(online_set.sd_now[0], test_set.sd_now[i], rtol=1e-6)
        np.testing.assert_allclose(online_set.sd_hist[0], test_set.sd_hist[i], rtol=1e-5)
        np.testing.assert_allclose(
            online_set.sd_hist_next[0], test_set.sd_hist_next[i], rtol=1e-5
        )
        np.testing.assert_allclose(online_set.wt_hist[0], test_set.wt_hist[i], rtol=1e-5)
        np.testing.assert_allclose(
            online_set.temperature[0], test_set.temperature[i], rtol=1e-4
        )
        np.testing.assert_array_equal(
            online_set.weather_types[0], test_set.weather_types[i]
        )
        assert online_set.gaps[0] == test_set.gaps[i]


class TestPredictorAPI:
    def test_predict_many_order(self, predictor, example_sets):
        _, test_set = example_sets
        queries = [
            GapQuery(int(test_set.area_ids[i]), int(test_set.day_ids[i]),
                     int(test_set.time_ids[i]))
            for i in (0, 1, 2)
        ]
        batch = predictor.predict_many(queries)
        singles = [predictor.predict(q.area_id, q.day, q.timeslot) for q in queries]
        np.testing.assert_allclose(batch, singles, rtol=1e-6)

    def test_empty_queries(self, predictor):
        assert predictor.predict_many([]).shape == (0,)

    def test_arbitrary_timeslot_works(self, predictor):
        # Not on any training/test grid: 10:07.
        value = predictor.predict(0, 8, 607)
        assert np.isfinite(value)

    def test_actual_gap_matches_dataset(self, predictor, dataset):
        assert predictor.actual_gap(1, 2, 600) == dataset.gap(1, 2, 600)

    def test_profiles_cached(self, predictor):
        predictor.predict(0, 8, 500)
        first = predictor._profiles[(0, 8)]
        predictor.predict(0, 8, 520)
        assert predictor._profiles[(0, 8)] is first


class TestValidation:
    def test_bad_area(self, predictor):
        with pytest.raises(DataError):
            predictor.predict(999, 0, 500)

    def test_bad_day(self, predictor):
        with pytest.raises(DataError):
            predictor.predict(0, 999, 500)

    def test_timeslot_too_early(self, predictor):
        with pytest.raises(DataError):
            predictor.predict(0, 0, 5)

    def test_timeslot_too_late(self, predictor):
        with pytest.raises(DataError):
            predictor.predict(0, 0, 1439)

    def test_missing_scalers_rejected(self, trained, dataset, scale):
        with pytest.raises(DataError):
            GapPredictor(trained, dataset, scale.features, {"temperature": (0, 1)})
