"""EpochBatches: the trainer's epoch-gather batch delivery.

The contract under test is bitwise equivalence with the historical
per-batch fancy-indexing path — same arrays, same rounding — plus the
field-subsetting and buffer-reuse behaviours the trainer relies on.
"""

import numpy as np
import pytest

from repro.core import (
    AdvancedDeepSD,
    BasicDeepSD,
    InputScales,
    Trainer,
    TrainingConfig,
    batch_targets,
    make_batch,
)
from repro.core.batching import INPUT_FIELDS, EpochBatches
from repro.nn import Adam, Tensor, iterate_minibatches, losses


BATCH = 32


def shuffled(train_set, seed=0):
    rng = np.random.default_rng(seed)
    permutation = np.arange(train_set.n_items)
    rng.shuffle(permutation)
    return permutation


class TestSliceEquivalence:
    def test_matches_make_batch_with_permutation(self, train_set):
        permutation = shuffled(train_set)
        epoch = EpochBatches(train_set, permutation)
        for start in range(0, train_set.n_items, BATCH):
            stop = min(start + BATCH, train_set.n_items)
            batch, targets = epoch.slice(start, stop)
            rows = permutation[start:stop]
            expected = make_batch(train_set, rows)
            for name in INPUT_FIELDS:
                np.testing.assert_array_equal(batch[name], expected[name])
            np.testing.assert_array_equal(targets, batch_targets(train_set, rows))

    def test_sequential_mode_serves_views(self, train_set):
        epoch = EpochBatches(train_set)
        batch, targets = epoch.slice(3, 17)
        assert batch["sd_now"].base is train_set.sd_now
        assert targets.base is train_set.gaps
        np.testing.assert_array_equal(batch["sd_now"], train_set.sd_now[3:17])

    def test_batches_covers_every_row_once(self, train_set):
        permutation = shuffled(train_set)
        epoch = EpochBatches(train_set, permutation, fields=("area_ids",))
        seen = np.concatenate(
            [batch["area_ids"] for batch, _ in epoch.batches(BATCH)]
        )
        np.testing.assert_array_equal(seen, train_set.area_ids[permutation])

    def test_field_subset_gathers_only_requested(self, train_set):
        epoch = EpochBatches(train_set, shuffled(train_set), fields=("sd_now",))
        batch, _ = epoch.slice(0, 8)
        assert set(batch) == {"sd_now"}

    def test_rejects_nonpositive_batch_size(self, train_set):
        with pytest.raises(ValueError):
            list(EpochBatches(train_set).batches(0))


class TestBufferReuse:
    def test_reused_buffers_keep_results_identical(self, train_set):
        buffers = {}
        first = EpochBatches(train_set, shuffled(train_set, 1), buffers=buffers)
        first_sd = first.slice(0, BATCH)[0]["sd_now"].copy()
        kept = dict(buffers)

        permutation = shuffled(train_set, 2)
        second = EpochBatches(train_set, permutation, buffers=buffers)
        assert dict(buffers) == kept  # same arrays, no reallocation
        batch, targets = second.slice(0, BATCH)
        rows = permutation[:BATCH]
        np.testing.assert_array_equal(batch["sd_now"], train_set.sd_now[rows])
        np.testing.assert_array_equal(targets, train_set.gaps[rows])
        assert not np.array_equal(batch["sd_now"], first_sd)

    def test_mismatched_buffer_is_replaced(self, train_set):
        buffers = {"sd_now": np.empty(3, dtype=np.float32)}
        EpochBatches(train_set, shuffled(train_set), buffers=buffers)
        assert buffers["sd_now"].shape == train_set.sd_now.shape


class TestModelInputFields:
    def test_basic_skips_history_fields(self, dataset, scale):
        model = BasicDeepSD(dataset.n_areas, scale.features.window_minutes)
        assert "sd_now" in model.input_fields
        assert not any("hist" in name for name in model.input_fields)

    def test_flags_drop_environment_fields(self, dataset, scale):
        model = BasicDeepSD(
            dataset.n_areas,
            scale.features.window_minutes,
            use_weather=False,
            use_traffic=False,
        )
        assert "traffic" not in model.input_fields
        assert "weather_types" not in model.input_fields

    def test_advanced_declares_history_fields(self, dataset, scale):
        model = AdvancedDeepSD(dataset.n_areas, scale.features.window_minutes)
        for signal in ("sd", "lc", "wt"):
            assert f"{signal}_hist" in model.input_fields
            assert f"{signal}_hist_next" in model.input_fields

    def test_declared_fields_suffice_for_forward(self, dataset, scale, train_set):
        for cls in (BasicDeepSD, AdvancedDeepSD):
            model = cls(
                dataset.n_areas, scale.features.window_minutes, dropout=0.0
            )
            model.eval()
            batch = make_batch(
                train_set, np.arange(4), fields=model.input_fields
            )
            assert model(batch).shape == (4,)


class TestTrainerEquivalence:
    def test_epoch_matches_legacy_loop_bitwise(self, dataset, scale, train_set):
        """The optimized epoch reproduces the historical loop exactly.

        The reference arm re-implements the pre-EpochBatches inner loop:
        per-batch make_batch gathers of every field.  Same seeds, same RNG
        stream — any drift in batch delivery or update arithmetic fails
        the exact equality below.
        """
        config = TrainingConfig(epochs=2, best_k=1, seed=7)
        loss_fn = losses.get(config.loss)

        def fresh_model():
            model = BasicDeepSD(
                dataset.n_areas,
                scale.features.window_minutes,
                scale.embeddings,
                dropout=0.1,
                seed=3,
            )
            model.input_scales = InputScales.from_example_set(train_set)
            model.train()
            return model

        reference = fresh_model()
        optimizer = Adam(reference.parameters(), lr=config.learning_rate)
        rng = np.random.default_rng(config.seed)
        for _ in range(config.epochs):
            for rows in iterate_minibatches(
                train_set.n_items, config.batch_size, shuffle=True, rng=rng
            ):
                optimizer.zero_grad()
                loss = loss_fn(
                    reference(make_batch(train_set, rows)),
                    Tensor(batch_targets(train_set, rows)),
                )
                loss.backward()
                optimizer.step()

        model = fresh_model()
        trainer = Trainer(model, config)
        optimizer = Adam(model.parameters(), lr=config.learning_rate)
        rng = np.random.default_rng(config.seed)
        for _ in range(config.epochs):
            trainer._run_epoch(train_set, optimizer, rng)

        for name, expected in reference.state_dict().items():
            np.testing.assert_array_equal(
                model.state_dict()[name], expected, err_msg=name
            )
