"""Unit tests for the DeepSD blocks."""

import numpy as np
import pytest

from repro.config import EmbeddingConfig
from repro.core import (
    BLOCK_WIDTH,
    ExtendedBlock,
    IdentityBlock,
    OneHotIdentityBlock,
    OutputHead,
    SupplyDemandBlock,
    TrafficBlock,
    WeatherBlock,
    WeekdayCombiner,
    combine_history,
    make_batch,
)
from repro.nn import Tensor

L = 20
N_AREAS = 6
EMB = EmbeddingConfig()
RNG = np.random.default_rng(0)


def fake_batch(n=8, rng=None):
    rng = rng or np.random.default_rng(1)
    return {
        "area_ids": rng.integers(0, N_AREAS, n),
        "time_ids": rng.integers(L, 1430, n),
        "week_ids": rng.integers(0, 7, n),
        "sd_now": rng.poisson(2.0, (n, 2 * L)).astype(float),
        "sd_hist": rng.poisson(2.0, (n, 7, 2 * L)).astype(float),
        "sd_hist_next": rng.poisson(2.0, (n, 7, 2 * L)).astype(float),
        "lc_now": rng.poisson(1.0, (n, 2 * L)).astype(float),
        "lc_hist": rng.poisson(1.0, (n, 7, 2 * L)).astype(float),
        "lc_hist_next": rng.poisson(1.0, (n, 7, 2 * L)).astype(float),
        "wt_now": rng.poisson(1.0, (n, 2 * L)).astype(float),
        "wt_hist": rng.poisson(1.0, (n, 7, 2 * L)).astype(float),
        "wt_hist_next": rng.poisson(1.0, (n, 7, 2 * L)).astype(float),
        "weather_types": rng.integers(0, 10, (n, L)),
        "temperature": rng.normal(0, 1, (n, L)),
        "pm25": rng.normal(0, 1, (n, L)),
        "traffic": rng.poisson(30, (n, L, 4)).astype(float),
    }


class TestIdentityBlock:
    def test_output_dim_matches_table1(self):
        block = IdentityBlock(58, EMB, RNG)
        assert block.output_dim == 8 + 6 + 3

    def test_forward_shape(self):
        block = IdentityBlock(N_AREAS, EMB, RNG)
        out = block(fake_batch(5))
        assert out.shape == (5, block.output_dim)

    def test_same_ids_same_rows(self):
        block = IdentityBlock(N_AREAS, EMB, RNG)
        batch = fake_batch(4)
        batch["area_ids"][:] = 3
        batch["time_ids"][:] = 100
        batch["week_ids"][:] = 2
        out = block(batch).data
        np.testing.assert_array_equal(out[0], out[1])


class TestOneHotIdentityBlock:
    def test_no_parameters(self):
        block = OneHotIdentityBlock(N_AREAS, EMB)
        assert block.num_parameters() == 0

    def test_output_dim(self):
        block = OneHotIdentityBlock(N_AREAS, EMB)
        assert block.output_dim == N_AREAS + 1440 + 7

    def test_rows_are_one_hot(self):
        block = OneHotIdentityBlock(N_AREAS, EMB)
        out = block(fake_batch(6)).data
        # Each row has exactly three ones: one per categorical feature.
        np.testing.assert_array_equal(out.sum(axis=1), np.full(6, 3.0))
        assert set(np.unique(out)) <= {0.0, 1.0}


class TestSupplyDemandBlock:
    def test_shape(self):
        block = SupplyDemandBlock(L, RNG)
        out = block(fake_batch(7))
        assert out.shape == (7, BLOCK_WIDTH)

    def test_grads_flow(self):
        block = SupplyDemandBlock(L, RNG)
        block(fake_batch(4)).sum().backward()
        assert block.hidden.weight.grad is not None


class TestEnvironmentBlocks:
    def test_weather_residual_shape(self):
        block = WeatherBlock(L, EMB, RNG)
        x_prev = Tensor(np.random.default_rng(2).normal(size=(5, BLOCK_WIDTH)))
        out = block(fake_batch(5), x_prev)
        assert out.shape == (5, BLOCK_WIDTH)

    def test_weather_residual_identity_at_zero_weights(self):
        """If the block's FC weights are zero, X_out == X_prev (pure shortcut)."""
        block = WeatherBlock(L, EMB, RNG)
        block.output.weight.data[:] = 0.0
        block.output.bias.data[:] = 0.0
        x_prev = Tensor(np.random.default_rng(2).normal(size=(3, BLOCK_WIDTH)))
        out = block(fake_batch(3), x_prev)
        np.testing.assert_allclose(out.data, x_prev.data)

    def test_weather_requires_prev_in_residual_mode(self):
        block = WeatherBlock(L, EMB, RNG)
        with pytest.raises(ValueError):
            block(fake_batch(3), None)

    def test_weather_non_residual_standalone(self):
        block = WeatherBlock(L, EMB, RNG, residual=False)
        out = block(fake_batch(3), None)
        assert out.shape == (3, BLOCK_WIDTH)

    def test_traffic_block_shape(self):
        block = TrafficBlock(L, RNG)
        x_prev = Tensor(np.zeros((4, BLOCK_WIDTH)))
        out = block(fake_batch(4), x_prev)
        assert out.shape == (4, BLOCK_WIDTH)

    def test_weather_gradients_reach_type_embedding(self):
        block = WeatherBlock(L, EMB, RNG)
        x_prev = Tensor(np.zeros((4, BLOCK_WIDTH)))
        block(fake_batch(4), x_prev).sum().backward()
        assert block.type_embedding.weight.grad is not None
        assert np.abs(block.type_embedding.weight.grad).sum() > 0


class TestWeekdayCombiner:
    def test_weights_are_simplex(self):
        combiner = WeekdayCombiner(N_AREAS, EMB, RNG)
        out = combiner(fake_batch(10)).data
        assert out.shape == (10, 7)
        assert (out > 0).all()
        np.testing.assert_allclose(out.sum(axis=1), np.ones(10), atol=1e-9)

    def test_weights_for_single_pair(self):
        combiner = WeekdayCombiner(N_AREAS, EMB, RNG)
        weights = combiner.weights_for(2, 6)
        assert weights.shape == (7,)
        assert weights.sum() == pytest.approx(1.0)

    def test_depends_on_area_and_week(self):
        combiner = WeekdayCombiner(N_AREAS, EMB, RNG)
        a = combiner.weights_for(0, 0)
        b = combiner.weights_for(1, 0)
        c = combiner.weights_for(0, 3)
        assert not np.allclose(a, b)
        assert not np.allclose(a, c)


class TestCombineHistory:
    def test_one_hot_weights_select_weekday(self):
        history = np.arange(7.0)[None, :, None] * np.ones((2, 7, 4))
        weights = np.zeros((2, 7))
        weights[:, 3] = 1.0
        out = combine_history(Tensor(weights), history)
        np.testing.assert_allclose(out.data, np.full((2, 4), 3.0))

    def test_uniform_weights_average(self):
        rng = np.random.default_rng(5)
        history = rng.normal(size=(3, 7, 5))
        weights = Tensor(np.full((3, 7), 1 / 7))
        out = combine_history(weights, history)
        np.testing.assert_allclose(out.data, history.mean(axis=1), atol=1e-12)

    def test_gradients_flow_to_weights(self):
        history = np.random.default_rng(6).normal(size=(2, 7, 3))
        weights = Tensor(np.full((2, 7), 1 / 7), requires_grad=True)
        combine_history(weights, history).sum().backward()
        np.testing.assert_allclose(weights.grad, history.sum(axis=2))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            combine_history(Tensor(np.zeros((2, 6))), np.zeros((2, 7, 3)))
        with pytest.raises(ValueError):
            combine_history(Tensor(np.zeros((2, 7))), np.zeros((2, 6, 3)))


class TestExtendedBlock:
    def test_first_block_no_residual_input(self):
        block = ExtendedBlock("sd", L, N_AREAS, EMB, 16, RNG, residual_input=False)
        out = block(fake_batch(5))
        assert out.shape == (5, BLOCK_WIDTH)

    def test_chained_block_shape(self):
        block = ExtendedBlock("lc", L, N_AREAS, EMB, 16, RNG)
        x_prev = Tensor(np.zeros((5, BLOCK_WIDTH)))
        out = block(fake_batch(5), x_prev)
        assert out.shape == (5, BLOCK_WIDTH)

    def test_residual_identity_at_zero_output_weights(self):
        block = ExtendedBlock("wt", L, N_AREAS, EMB, 16, RNG)
        block.output.weight.data[:] = 0.0
        block.output.bias.data[:] = 0.0
        x_prev = Tensor(np.random.default_rng(0).normal(size=(4, BLOCK_WIDTH)))
        out = block(fake_batch(4), x_prev)
        np.testing.assert_allclose(out.data, x_prev.data)

    def test_missing_prev_raises(self):
        block = ExtendedBlock("sd", L, N_AREAS, EMB, 16, RNG)
        with pytest.raises(ValueError):
            block(fake_batch(3))

    def test_unknown_signal_rejected(self):
        with pytest.raises(ValueError):
            ExtendedBlock("xx", L, N_AREAS, EMB, 16, RNG)

    def test_invalid_projection_dim(self):
        with pytest.raises(ValueError):
            ExtendedBlock("sd", L, N_AREAS, EMB, 0, RNG)

    def test_weekday_weights_exposed(self):
        block = ExtendedBlock("sd", L, N_AREAS, EMB, 16, RNG, residual_input=False)
        weights = block.weekday_weights(0, 1)
        assert weights.shape == (7,)
        assert weights.sum() == pytest.approx(1.0)


class TestOutputHead:
    def test_scalar_per_item(self):
        head = OutputHead(49, RNG)
        out = head(Tensor(np.random.default_rng(1).normal(size=(6, 49))))
        assert out.shape == (6,)

    def test_linear_output_unbounded(self):
        # The final neuron is linear: large negative inputs can produce
        # large negative outputs (no squashing).
        head = OutputHead(4, RNG)
        head.neuron.weight.data[:] = 1.0
        head.neuron.bias.data[:] = 0.0
        head.hidden.weight.data[:] = 1.0
        out = head(Tensor(np.full((1, 4), 100.0)))
        assert out.data[0] > 100
