"""Tests for the command-line interface (in-process via cli.main)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def city_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "city.npz"
    assert main(["simulate", "--scale", "tiny", "--out", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def example_paths(city_path, tmp_path_factory):
    base = tmp_path_factory.mktemp("cli_features")
    train, test = base / "train.npz", base / "test.npz"
    code = main(
        [
            "featurize", "--scale", "tiny", "--city", str(city_path),
            "--train-out", str(train), "--test-out", str(test),
        ]
    )
    assert code == 0
    return train, test


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestSimulate:
    def test_creates_loadable_city(self, city_path):
        from repro.city import CityDataset

        dataset = CityDataset.load(city_path)
        assert dataset.n_areas == 6

    def test_seed_override(self, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        main(["simulate", "--scale", "tiny", "--seed", "1", "--out", str(a)])
        main(["simulate", "--scale", "tiny", "--seed", "2", "--out", str(b)])
        from repro.city import CityDataset

        assert CityDataset.load(a).n_orders != CityDataset.load(b).n_orders


class TestFeaturize:
    def test_outputs_loadable(self, example_paths):
        from repro.features import ExampleSet

        train = ExampleSet.load(example_paths[0])
        test = ExampleSet.load(example_paths[1])
        assert train.n_items > 0
        assert test.n_items > 0
        assert train.window == test.window


class TestTrainEvaluate:
    def test_train_and_evaluate_roundtrip(self, example_paths, tmp_path, capsys):
        train, test = example_paths
        weights = tmp_path / "model.npz"
        code = main(
            [
                "train", "--model", "basic", "--scale", "tiny",
                "--train", str(train), "--test", str(test),
                "--epochs", "2", "--save", str(weights),
            ]
        )
        assert code == 0
        assert weights.exists()
        out = capsys.readouterr().out
        assert "trained basic" in out
        assert "RMSE" in out

        code = main(
            [
                "evaluate", "--model", "basic", "--scale", "tiny",
                "--weights", str(weights),
                "--train", str(train), "--test", str(test),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MAE" in out and "basic" in out

    def test_train_without_eval_set(self, example_paths, capsys):
        train, _ = example_paths
        code = main(
            [
                "train", "--model", "basic", "--scale", "tiny",
                "--train", str(train), "--epochs", "1",
            ]
        )
        assert code == 0


class TestCheckpointResume:
    def test_interrupt_then_resume_matches_straight_run(
        self, example_paths, tmp_path, capsys
    ):
        train, test = example_paths
        ckpt = tmp_path / "ckpt"
        straight = tmp_path / "straight.npz"
        resumed = tmp_path / "resumed.npz"
        base = [
            "train", "--model", "basic", "--scale", "tiny",
            "--train", str(train), "--test", str(test), "--epochs", "3",
        ]
        assert main(base + ["--save", str(straight)]) == 0
        code = main(
            base + ["--checkpoint-dir", str(ckpt), "--stop-after", "1"]
        )
        assert code == 0
        assert (ckpt / "latest.json").exists()
        out = capsys.readouterr().out
        assert "stopped early after epoch 1" in out

        code = main(
            base + ["--checkpoint-dir", str(ckpt), "--resume",
                    "--save", str(resumed)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from" in out

        import json

        a, b = np.load(straight), np.load(resumed)
        assert set(a.files) == set(b.files)
        for key in a.files:
            np.testing.assert_array_equal(a[key], b[key])
        manifest = json.loads((tmp_path / "resumed.npz.manifest.json").read_text())
        assert manifest["resume"]["epoch"] == 1
        assert manifest["resume"]["from"].endswith("ckpt-00001.json")
        assert manifest["artifacts"]["checkpoint_dir"] == str(ckpt)

    def test_bare_resume_requires_checkpoint_dir(self, example_paths):
        from repro.exceptions import ConfigError

        train, _ = example_paths
        with pytest.raises(ConfigError, match="checkpoint-dir"):
            main(
                [
                    "train", "--model", "basic", "--scale", "tiny",
                    "--train", str(train), "--epochs", "1", "--resume",
                ]
            )


class TestInfo:
    def test_city_info(self, city_path, capsys):
        assert main(["info", str(city_path), "--kind", "city"]) == 0
        out = capsys.readouterr().out
        assert "n_orders" in out

    def test_examples_info(self, example_paths, capsys):
        assert main(["info", str(example_paths[0]), "--kind", "examples"]) == 0
        out = capsys.readouterr().out
        assert "gap mean" in out


class TestExperimentCommand:
    def test_table1_runs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        # Fresh context registry so the env var takes effect.
        from repro.experiments import context as context_module

        context_module._CONTEXTS.clear()
        assert main(["experiment", "table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "AreaID" in out
        context_module._CONTEXTS.clear()
