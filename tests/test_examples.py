"""Smoke tests: every shipped example must run end-to-end.

Examples are plain scripts (not a package); they are loaded by path and
their ``main()`` executed in-process.  Each example's own assertions (e.g.
"DeepSD beats the historical mean") run as part of this.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "fleet_rebalancing",
    "extend_with_new_data",
    "embedding_explorer",
    "dispatch_backtest",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_all_examples_listed():
    on_disk = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), "keep the smoke-test list in sync"
