"""Shared fixtures: one tiny simulated city per test session."""

import pytest

from repro.city import simulate_city
from repro.config import tiny_scale


@pytest.fixture(scope="session")
def scale():
    return tiny_scale()


@pytest.fixture(scope="session")
def dataset(scale):
    return simulate_city(scale.simulation)


@pytest.fixture(scope="session")
def dataset_global(dataset):
    """Alias used by the hypothesis property tests (session-scoped)."""
    return dataset


@pytest.fixture(scope="session")
def example_sets(dataset, scale):
    from repro.features import FeatureBuilder

    return FeatureBuilder(dataset, scale.features).build()
