"""Tests for historical averages, the environment extractor and the builder."""

import numpy as np
import pytest

from repro.city import SimulationCalendar
from repro.exceptions import DataError
from repro.features import (
    ExampleSet,
    FeatureBuilder,
    HistoryAccumulator,
    Standardizer,
    empirical_combination,
    extract_environment,
    linear_design_matrix,
    tree_design_matrix,
)


class TestHistoryAccumulator:
    @pytest.fixture
    def accumulator(self):
        # 21 days starting Monday, 2 slots, dim 3; vectors = day index.
        calendar = SimulationCalendar(n_days=21, start_weekday=0)
        vectors = np.zeros((21, 2, 3))
        for day in range(21):
            vectors[day] = day
        return HistoryAccumulator(calendar, vectors), vectors

    def test_no_history_is_zero(self, accumulator):
        acc, _ = accumulator
        np.testing.assert_array_equal(acc.history_before(0), np.zeros((7, 2, 3)))

    def test_single_prior_day(self, accumulator):
        acc, _ = accumulator
        # Day 8 (Tuesday): only Tuesday so far is day 1.
        np.testing.assert_allclose(acc.history_before(8)[1], np.full((2, 3), 1.0))

    def test_average_of_two_prior_days(self, accumulator):
        acc, _ = accumulator
        # Day 15 (Tuesday): Tuesdays 1 and 8 -> mean 4.5.
        np.testing.assert_allclose(acc.history_before(15)[1], np.full((2, 3), 4.5))

    def test_unseen_weekday_stays_zero(self, accumulator):
        acc, _ = accumulator
        # Before day 3 (Thursday), no Thursday has occurred.
        np.testing.assert_array_equal(acc.history_before(3)[3], np.zeros((2, 3)))

    def test_strictly_prior(self, accumulator):
        acc, _ = accumulator
        # The day itself must not be included: day 7 is a Monday, history
        # for Monday before day 7 is just day 0.
        np.testing.assert_allclose(acc.history_before(7)[0], np.zeros((2, 3)))

    def test_matches_manual_average(self):
        rng = np.random.default_rng(0)
        calendar = SimulationCalendar(n_days=28, start_weekday=3)
        vectors = rng.normal(size=(28, 4, 5))
        acc = HistoryAccumulator(calendar, vectors)
        day = 20
        for weekday in range(7):
            prior = calendar.days_with_weekday(weekday, before=day)
            expected = (
                vectors[prior].mean(axis=0) if prior else np.zeros((4, 5))
            )
            np.testing.assert_allclose(acc.history_before(day)[weekday], expected)

    def test_batch_matches_single(self, accumulator):
        acc, _ = accumulator
        days = np.array([3, 8, 15])
        slots = np.array([0, 1, 0])
        batch = acc.history_before_batch(days, slots)
        for i in range(3):
            np.testing.assert_array_equal(
                batch[i], acc.history_before(int(days[i]))[:, slots[i], :]
            )

    def test_validation(self):
        calendar = SimulationCalendar(n_days=3)
        with pytest.raises(ValueError):
            HistoryAccumulator(calendar, np.zeros((3, 2)))
        with pytest.raises(ValueError):
            HistoryAccumulator(calendar, np.zeros((5, 2, 2)))
        acc = HistoryAccumulator(calendar, np.zeros((3, 2, 2)))
        with pytest.raises(ValueError):
            acc.history_before(4)
        with pytest.raises(ValueError):
            acc.history_before_batch(np.array([0]), np.array([0, 1]))


class TestEmpiricalCombination:
    def test_uniform_weights_average(self):
        history = np.arange(7.0)[:, None] * np.ones((7, 4))
        out = empirical_combination(history, np.full(7, 1 / 7))
        np.testing.assert_allclose(out, np.full(4, 3.0))

    def test_one_hot_weights_select(self):
        history = np.arange(7.0)[:, None] * np.ones((7, 4))
        weights = np.zeros(7)
        weights[2] = 1.0
        np.testing.assert_allclose(
            empirical_combination(history, weights), np.full(4, 2.0)
        )

    def test_invalid_weights(self):
        history = np.zeros((7, 4))
        with pytest.raises(ValueError):
            empirical_combination(history, np.ones(7))
        with pytest.raises(ValueError):
            empirical_combination(history, np.full(6, 1 / 6))


class TestEnvironmentExtraction:
    def test_shapes(self, dataset):
        env = extract_environment(
            dataset, np.array([0, 1]), np.array([0, 1]), np.array([300, 500]), 20
        )
        assert env.weather_types.shape == (2, 20)
        assert env.temperature.shape == (2, 20)
        assert env.traffic.shape == (2, 20, 4)

    def test_lag_indexing(self, dataset):
        """Slot ℓ-1 of the window is the condition at minute t-ℓ."""
        env = extract_environment(
            dataset, np.array([1]), np.array([2]), np.array([400]), 20
        )
        assert env.weather_types[0, 0] == dataset.weather.types[2, 399]
        assert env.weather_types[0, 19] == dataset.weather.types[2, 380]
        np.testing.assert_array_equal(
            env.traffic[0, 4], dataset.traffic.at(1, 2, 395)
        )

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            extract_environment(
                dataset, np.array([0]), np.array([0]), np.array([5]), 20
            )
        with pytest.raises(ValueError):
            extract_environment(
                dataset, np.array([0, 1]), np.array([0]), np.array([300]), 20
            )


class TestStandardizer:
    def test_fit_transform_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 3.0, size=1000)
        scaler = Standardizer.fit(values)
        out = scaler.transform(values)
        assert abs(out.mean()) < 1e-9
        assert abs(out.std() - 1.0) < 1e-9

    def test_inverse_roundtrip(self):
        scaler = Standardizer(mean=2.0, std=4.0)
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(scaler.inverse(scaler.transform(values)), values)

    def test_constant_input_safe(self):
        scaler = Standardizer.fit(np.full(10, 7.0))
        out = scaler.transform(np.full(10, 7.0))
        np.testing.assert_allclose(out, np.zeros(10))


class TestFeatureBuilder:
    def test_item_counts(self, example_sets, scale, dataset):
        train, test = example_sets
        f = scale.features
        expected_train = (
            dataset.n_areas * f.train_days * len(list(f.train_timeslots()))
        )
        expected_test = dataset.n_areas * f.test_days * len(list(f.test_timeslots()))
        assert train.n_items == expected_train
        assert test.n_items == expected_test

    def test_train_test_days_disjoint(self, example_sets, scale):
        train, test = example_sets
        assert train.day_ids.max() < scale.features.train_days
        assert test.day_ids.min() >= scale.features.train_days

    def test_week_ids_consistent_with_calendar(self, example_sets, dataset):
        train, _ = example_sets
        for i in range(0, train.n_items, 37):
            assert train.week_ids[i] == dataset.calendar.day_of_week(
                int(train.day_ids[i])
            )

    def test_gap_labels_match_dataset(self, example_sets, dataset, scale):
        train, _ = example_sets
        for i in range(0, train.n_items, 53):
            expected = dataset.gap(
                int(train.area_ids[i]),
                int(train.day_ids[i]),
                int(train.time_ids[i]),
                horizon=scale.features.gap_minutes,
            )
            assert train.gaps[i] == expected

    def test_now_vector_matches_profile(self, example_sets, dataset, scale):
        from repro.features import AreaDayProfile

        train, _ = example_sets
        i = train.n_items // 2
        profile = AreaDayProfile(
            dataset,
            int(train.area_ids[i]),
            int(train.day_ids[i]),
            scale.features.window_minutes,
        )
        np.testing.assert_allclose(
            train.sd_now[i], profile.supply_demand_vector(int(train.time_ids[i])),
            rtol=1e-6,
        )
        np.testing.assert_allclose(
            train.lc_now[i], profile.last_call_vector(int(train.time_ids[i])),
            rtol=1e-6,
        )

    def test_history_strictly_prior(self, example_sets, dataset, scale):
        """First-occurrence weekdays must have all-zero history."""
        train, _ = example_sets
        first_day_items = train.day_ids == 0
        assert first_day_items.any()
        np.testing.assert_array_equal(
            train.sd_hist[first_day_items], 0.0
        )

    def test_history_matches_manual_average(self, example_sets, dataset, scale):
        _, test = example_sets
        L = scale.features.window_minutes
        from repro.features import AreaDayProfile

        # Find an item on a day with at least one prior same-weekday day.
        candidates = np.flatnonzero(test.day_ids >= 7)
        i = int(candidates[0])
        train = test
        area, day, t = (
            int(train.area_ids[i]),
            int(train.day_ids[i]),
            int(train.time_ids[i]),
        )
        weekday = dataset.calendar.day_of_week(day)
        prior = dataset.calendar.days_with_weekday(weekday, before=day)
        vectors = [
            AreaDayProfile(dataset, area, m, L).supply_demand_vector(t)
            for m in prior
        ]
        np.testing.assert_allclose(
            train.sd_hist[i, weekday], np.mean(vectors, axis=0), rtol=1e-5
        )

    def test_environment_standardized(self, example_sets):
        train, _ = example_sets
        assert abs(train.temperature.mean()) < 0.1
        assert "temperature" in train.scalers
        assert "pm25" in train.scalers

    def test_test_set_uses_train_scalers(self, example_sets):
        train, test = example_sets
        assert train.scalers == test.scalers

    def test_too_few_days_rejected(self, dataset, scale):
        from dataclasses import replace

        config = replace(scale.features, train_days=30)
        with pytest.raises(DataError):
            FeatureBuilder(dataset, config)


class TestExampleSet:
    def test_subset(self, example_sets):
        train, _ = example_sets
        sub = train.subset(np.array([0, 5, 10]))
        assert sub.n_items == 3
        np.testing.assert_array_equal(sub.area_ids, train.area_ids[[0, 5, 10]])
        np.testing.assert_array_equal(sub.sd_hist, train.sd_hist[[0, 5, 10]])
        assert sub.window == train.window

    def test_save_load_roundtrip(self, example_sets, tmp_path):
        train, _ = example_sets
        path = tmp_path / "train.npz"
        train.save(path)
        loaded = ExampleSet.load(path)
        assert loaded.n_items == train.n_items
        np.testing.assert_array_equal(loaded.gaps, train.gaps)
        np.testing.assert_array_equal(loaded.sd_hist_next, train.sd_hist_next)
        assert loaded.scalers == train.scalers
        assert loaded.window == train.window

    def test_len(self, example_sets):
        train, _ = example_sets
        assert len(train) == train.n_items

    def test_mismatched_rows_rejected(self, example_sets):
        import dataclasses

        train, _ = example_sets
        kwargs = {
            f.name: getattr(train, f.name) for f in dataclasses.fields(train)
        }
        kwargs["gaps"] = train.gaps[:-1]
        with pytest.raises(DataError):
            ExampleSet(**kwargs)


class TestDesignMatrices:
    def test_tree_matrix_shape_and_names(self, example_sets):
        train, _ = example_sets
        X, names = tree_design_matrix(train)
        assert X.shape == (train.n_items, len(names))
        assert names[0] == "area_id"
        assert not np.isnan(X).any()

    def test_linear_matrix_one_hot_blocks(self, example_sets):
        train, test = example_sets
        Xtr, Xte, names = linear_design_matrix(train, test)
        assert Xtr.shape[1] == Xte.shape[1] == len(names)
        area_cols = [i for i, n in enumerate(names) if n.startswith("area=")]
        # One-hot: each row has exactly one active area column.
        np.testing.assert_allclose(Xtr[:, area_cols].sum(axis=1), 1.0)

    def test_linear_numeric_standardized(self, example_sets):
        train, test = example_sets
        Xtr, _, names = linear_design_matrix(train, test)
        numeric = [i for i, n in enumerate(names) if "=" not in n]
        means = Xtr[:, numeric].mean(axis=0)
        assert np.abs(means).max() < 1e-6
