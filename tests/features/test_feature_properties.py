"""Property-based tests for feature-vector invariants.

These hold for *any* timeslot of any simulated area-day:

- the supply-demand vector conserves order counts;
- the last-call vector counts each passenger at most once and never
  exceeds the order counts;
- the waiting-time vector counts at most the passengers whose sessions fit
  in the window;
- history accumulators are exact running means.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.city import SimulationCalendar
from repro.features import AreaDayProfile, HistoryAccumulator

L = 20


def profile_for(dataset, area, day):
    return AreaDayProfile(dataset, area, day, L)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=L, max_value=1440),
)
def test_sd_vector_conserves_orders(dataset_global, area, day, t):
    dataset = dataset_global
    profile = profile_for(dataset, area, day)
    orders = dataset.area_day_orders(area, day)
    in_window = ((orders["ts"] >= t - L) & (orders["ts"] < t)).sum()
    assert profile.supply_demand_vector(t).sum() == in_window


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=L, max_value=1440),
)
def test_lc_counts_unique_passengers(dataset_global, area, day, t):
    dataset = dataset_global
    profile = profile_for(dataset, area, day)
    orders = dataset.area_day_orders(area, day)
    window = orders[(orders["ts"] >= t - L) & (orders["ts"] < t)]
    assert profile.last_call_vector(t).sum() == len(np.unique(window["pid"]))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=L, max_value=1440),
)
def test_lc_bounded_by_sd(dataset_global, area, day, t):
    profile = profile_for(dataset_global, area, day)
    sd = profile.supply_demand_vector(t)
    lc = profile.last_call_vector(t)
    totals_sd = sd[:L] + sd[L:]
    totals_lc = lc[:L] + lc[L:]
    assert (totals_lc <= totals_sd + 1e-9).all()


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=L, max_value=1440),
)
def test_wt_bounded_by_contained_sessions(dataset_global, area, day, t):
    dataset = dataset_global
    profile = profile_for(dataset, area, day)
    sessions = dataset.area_day_sessions(area, day)
    contained = (
        (sessions["first_ts"] >= t - L) & (sessions["last_ts"] < t)
    ).sum()
    assert profile.waiting_time_vector(t).sum() == contained


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=L, max_value=1430),
)
def test_all_vectors_non_negative(dataset_global, area, day, t):
    profile = profile_for(dataset_global, area, day)
    for vector in (
        profile.supply_demand_vector(t),
        profile.last_call_vector(t),
        profile.waiting_time_vector(t),
    ):
        assert (vector >= 0).all()


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=1000),
)
def test_history_accumulator_is_running_mean(n_days, start_weekday, seed):
    rng = np.random.default_rng(seed)
    calendar = SimulationCalendar(n_days=n_days, start_weekday=start_weekday)
    vectors = rng.normal(size=(n_days, 2, 3))
    accumulator = HistoryAccumulator(calendar, vectors)
    day = int(rng.integers(0, n_days + 1))
    history = accumulator.history_before(day)
    for weekday in range(7):
        prior = calendar.days_with_weekday(weekday, before=day)
        expected = vectors[prior].mean(axis=0) if prior else np.zeros((2, 3))
        np.testing.assert_allclose(history[weekday], expected, atol=1e-12)
