"""Tests for the real-time vectors against brute-force recomputation.

Every vector definition (paper Definitions 5-7) is re-derived here directly
from the raw order/session records, and the optimised AreaDayProfile output
must match exactly.
"""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.features import AreaDayProfile

L = 20


@pytest.fixture(scope="module")
def profile(dataset):
    return AreaDayProfile(dataset, area_id=0, day=2, window=L)


def brute_force_sd(orders, t):
    vec = np.zeros(2 * L)
    for lag in range(1, L + 1):
        at = orders[orders["ts"] == t - lag]
        vec[lag - 1] = at["valid"].sum()
        vec[L + lag - 1] = (~at["valid"]).sum()
    return vec


def brute_force_lc(orders, t):
    """Definition 6 verbatim: keep only each passenger's last call in the window."""
    window = orders[(orders["ts"] >= t - L) & (orders["ts"] < t)]
    last_call = {}
    for order in window:
        pid = order["pid"]
        if pid not in last_call or order["ts"] > last_call[pid]["ts"]:
            last_call[pid] = order
    vec = np.zeros(2 * L)
    for order in last_call.values():
        lag = t - order["ts"]
        if order["valid"]:
            vec[lag - 1] += 1
        else:
            vec[L + lag - 1] += 1
    return vec


def brute_force_wt(orders, t):
    """Definition 7: passengers bucketed by wait (first call to last call),
    split by served.

    Only sessions *fully contained* in the window count: a passenger still
    calling at or after ``t`` has an undetermined outcome at prediction
    time, and one whose first call predates ``t-L`` was not fully observed.
    """
    sessions = {}
    for order in orders:
        pid = order["pid"]
        entry = sessions.setdefault(
            pid, {"first": order["ts"], "last": order["ts"], "served": False}
        )
        entry["first"] = min(entry["first"], order["ts"])
        entry["last"] = max(entry["last"], order["ts"])
        entry["served"] = entry["served"] or bool(order["valid"])
    vec = np.zeros(2 * L)
    for entry in sessions.values():
        if not (t - L <= entry["first"] and entry["last"] < t):
            continue
        wait = entry["last"] - entry["first"]
        vec[wait if entry["served"] else L + wait] += 1
    return vec


class TestSupplyDemandVector:
    @pytest.mark.parametrize("t", [60, 480, 720, 1080, 1439])
    def test_matches_brute_force(self, dataset, profile, t):
        orders = dataset.area_day_orders(0, 2)
        np.testing.assert_allclose(
            profile.supply_demand_vector(t), brute_force_sd(orders, t)
        )

    def test_batch_matches_single(self, profile):
        ts = np.array([100, 500, 900])
        batch = profile.supply_demand_vectors(ts)
        for i, t in enumerate(ts):
            np.testing.assert_allclose(batch[i], profile.supply_demand_vector(int(t)))

    def test_shape(self, profile):
        assert profile.supply_demand_vector(300).shape == (2 * L,)

    def test_conservation(self, dataset, profile):
        """Sum of the vector equals the number of orders in the window."""
        orders = dataset.area_day_orders(0, 2)
        t = 700
        in_window = ((orders["ts"] >= t - L) & (orders["ts"] < t)).sum()
        assert profile.supply_demand_vector(t).sum() == in_window

    def test_timeslot_bounds_enforced(self, profile):
        with pytest.raises(DataError):
            profile.supply_demand_vectors(np.array([L - 1]))
        with pytest.raises(DataError):
            profile.supply_demand_vectors(np.array([1441]))


class TestLastCallVector:
    @pytest.mark.parametrize("t", [60, 480, 760, 1100, 1400])
    def test_matches_brute_force(self, dataset, profile, t):
        orders = dataset.area_day_orders(0, 2)
        np.testing.assert_allclose(
            profile.last_call_vector(t), brute_force_lc(orders, t)
        )

    def test_counts_unique_passengers(self, dataset, profile):
        """Each passenger contributes at most once to the last-call vector."""
        orders = dataset.area_day_orders(0, 2)
        t = 800
        window = orders[(orders["ts"] >= t - L) & (orders["ts"] < t)]
        n_pids = len(np.unique(window["pid"]))
        assert profile.last_call_vector(t).sum() == n_pids

    def test_at_most_supply_demand(self, profile):
        """Last-call counts can never exceed total order counts per minute."""
        for t in (300, 600, 1200):
            sd = profile.supply_demand_vector(t)
            lc = profile.last_call_vector(t)
            total_sd = sd[:L] + sd[L:]
            total_lc = lc[:L] + lc[L:]
            assert (total_lc <= total_sd + 1e-9).all()

    def test_batch_matches_single(self, profile):
        ts = np.array([250, 650, 1300])
        batch = profile.last_call_vectors(ts)
        for i, t in enumerate(ts):
            np.testing.assert_allclose(batch[i], profile.last_call_vector(int(t)))


class TestWaitingTimeVector:
    @pytest.mark.parametrize("t", [60, 480, 760, 1100, 1400])
    def test_matches_brute_force(self, dataset, profile, t):
        orders = dataset.area_day_orders(0, 2)
        expected = brute_force_wt(orders, t)
        np.testing.assert_allclose(profile.waiting_time_vector(t), expected)

    def test_batch_matches_single(self, profile):
        ts = np.array([150, 750, 1350])
        batch = profile.waiting_time_vectors(ts)
        for i, t in enumerate(ts):
            np.testing.assert_allclose(batch[i], profile.waiting_time_vector(int(t)))

    def test_non_negative(self, profile):
        for t in (100, 500, 1000):
            assert (profile.waiting_time_vector(t) >= 0).all()


class TestProfileValidation:
    def test_invalid_window(self, dataset):
        with pytest.raises(ValueError):
            AreaDayProfile(dataset, 0, 0, window=0)

    def test_2d_timeslots_rejected(self, profile):
        with pytest.raises(ValueError):
            profile.supply_demand_vectors(np.zeros((2, 2), dtype=int))
