"""Structural tests for every experiment runner at tiny scale.

These check that each table/figure runner executes end-to-end and produces
well-formed results.  *Shape* assertions (who wins) belong to the benchmark
harness at bench scale — tiny-scale outcomes are too noisy for them.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig1,
    fig10,
    fig11,
    fig12,
    fig13,
    fig15,
    fig16,
    table1,
    table2,
    table3,
    table4,
    table5,
)


class TestTable1:
    def test_rows(self, context):
        rows = table1.run(context)
        assert [row.layer for row in rows] == ["AreaID", "TimeID", "WeekID", "wc.type"]
        assert all(row.output_dim < row.input_vocab or row.layer == "AreaID"
                   for row in rows)

    def test_model_agreement(self, context):
        actual = dict(table1.verify_against_model(context))
        for row in table1.run(context):
            assert actual[row.layer] == row.output_dim


class TestTable2:
    def test_all_models_present(self, context):
        rows = table2.run(context)
        names = {row.model for row in rows}
        assert names == {
            "Average", "LASSO", "GBDT", "RF", "Basic DeepSD", "Advanced DeepSD",
        }

    def test_metrics_finite_positive(self, context):
        for row in table2.run(context):
            assert np.isfinite(row.mae) and row.mae >= 0
            assert row.rmse >= row.mae

    def test_learned_models_beat_average(self, context):
        rows = {row.model: row for row in table2.run(context)}
        assert rows["Advanced DeepSD"].rmse < rows["Average"].rmse

    def test_improvement_metric(self, context):
        rows = table2.run(context)
        improvement = table2.improvement_over_best_existing(rows)
        assert -1.0 < improvement < 1.0


class TestTable3:
    def test_four_rows(self, context):
        rows = table3.run(context)
        assert len(rows) == 4
        assert {(r.model, r.representation) for r in rows} == {
            ("basic", "One-hot"), ("basic", "Embedding"),
            ("advanced", "One-hot"), ("advanced", "Embedding"),
        }

    def test_times_positive(self, context):
        for row in table3.run(context):
            assert row.seconds_per_epoch > 0


class TestTable4:
    def test_distance_matrix_valid(self, context):
        result = table4.run(context)
        assert result.distances.shape[0] == len(result.areas)
        np.testing.assert_allclose(result.distances, result.distances.T, atol=1e-9)
        assert (result.distances >= 0).all()

    def test_pairs_reference_real_areas(self, context):
        result = table4.run(context)
        n = context.dataset.n_areas
        for pair in result.close_pairs + result.far_pairs:
            assert 0 <= pair.area_a < n
            assert 0 <= pair.area_b < n
            assert pair.embedding_distance >= 0

    def test_close_pairs_closer(self, context):
        result = table4.run(context)
        for close, far in zip(result.close_pairs, result.far_pairs):
            assert close.embedding_distance <= far.embedding_distance


class TestTable5:
    def test_rows(self, context):
        rows = table5.run(context)
        assert len(rows) == 4
        assert {(r.model, r.residual) for r in rows} == {
            ("basic", True), ("basic", False),
            ("advanced", True), ("advanced", False),
        }


class TestFig1:
    def test_four_curves(self, context):
        result = fig1.run(context)
        assert len(result.curves) == 4
        for curve in result.curves:
            assert curve.hourly_demand.shape == (24,)
            assert (curve.hourly_demand >= 0).all()

    def test_ratios_computable(self, context):
        result = fig1.run(context)
        assert fig1.entertainment_weekend_ratio(result) > 0
        assert fig1.business_commute_peak_ratio(result) > 0

    def test_curve_lookup(self, context):
        result = fig1.run(context)
        first = result.curves[0]
        assert result.curve(first.area_id, first.weekday_name) is first
        with pytest.raises(KeyError):
            result.curve(10_000, "Wednesday")


class TestFig10:
    def test_series_structure(self, context):
        series = fig10.run(context, thresholds=(2, 10, 100))
        assert set(series) == {"GBDT", "Basic DeepSD", "Advanced DeepSD"}
        for data in series.values():
            assert len(data.mae) == 3
            assert data.n_items == sorted(data.n_items)

    def test_win_fraction_bounds(self, context):
        series = fig10.run(context, thresholds=(2, 10, 100))
        assert 0.0 <= fig10.advanced_win_fraction(series) <= 1.0


class TestFig11:
    def test_curves_cover_test_items(self, context):
        result = fig11.run(context)
        per_day = len(list(context.scale.features.test_timeslots()))
        expected = per_day * context.scale.features.test_days
        assert len(result.curve_gbdt) == expected
        assert len(result.curve_deepsd) == expected

    def test_errors_positive(self, context):
        result = fig11.run(context)
        assert result.rmse_gbdt_rapid > 0
        assert result.rmse_deepsd_rapid > 0


class TestFig12:
    def test_pairs_valid(self, context):
        result = fig12.run(context)
        assert result.close_pair.embedding_distance <= result.far_pair.embedding_distance
        assert -1.0 <= result.close_pair.correlation <= 1.0
        assert result.scale_free_pair.scale_ratio >= 1.0
        assert result.close_pair.hourly_a.shape == (24,)


class TestFig13:
    def test_six_rows(self, context):
        rows = fig13.run(context)
        assert len(rows) == 6

    def test_case_errors_helper(self, context):
        rows = fig13.run(context)
        errors = fig13.case_errors(rows, "basic")
        assert set(errors) == {"A", "B", "C"}


class TestFig15:
    def test_profiles_are_distributions(self, context):
        result = fig15.run(context, n_areas=2)
        assert len(result.profiles) == 2
        for profile in result.profiles:
            np.testing.assert_allclose(
                profile.weights.sum(axis=1), np.ones(7), atol=1e-6
            )

    def test_mass_helpers(self, context):
        result = fig15.run(context, n_areas=2)
        assert 0.0 <= fig15.mean_weekend_mass_on_sunday(result) <= 1.0
        assert 0.0 <= fig15.mean_weekend_mass_on_tuesday(result) <= 1.0

    def test_profile_lookup(self, context):
        result = fig15.run(context, n_areas=2)
        first = result.profiles[0]
        assert result.profile(first.area_id) is first
        with pytest.raises(KeyError):
            result.profile(9_999)


class TestFig16:
    def test_curves_and_advantage(self, context):
        result = fig16.run(context, epochs=2)
        assert len(result.finetune_loss) == 2
        assert len(result.retrain_rmse) == 2
        # Fine-tuning must start ahead: shared weights are already trained.
        assert result.finetune_loss[0] < result.retrain_loss[0]

    def test_epochs_to_reach(self, context):
        result = fig16.run(context, epochs=2)
        level = max(result.finetune_rmse) + 1.0
        assert result.epochs_to_reach(level, "finetune") == 1
        assert result.epochs_to_reach(-1.0, "retrain") == -1


class TestContextCaching:
    def test_trained_models_cached_in_memory(self, context):
        a = context.trained("basic")
        b = context.trained("basic")
        assert a is b

    def test_baselines_cached(self, context):
        a = context.baseline("average")
        b = context.baseline("average")
        assert a is b

    def test_unknown_baseline_rejected(self, context):
        with pytest.raises(KeyError):
            context.baseline("xgboost")
