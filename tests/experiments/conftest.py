"""Shared tiny-scale experiment context for runner tests.

Uses a temporary cache dir so tests never touch (or depend on) the real
benchmark cache.
"""

import pytest

from repro.config import get_scale
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="session")
def context(tmp_path_factory, monkeypatch_session=None):
    import os

    cache = tmp_path_factory.mktemp("repro_cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    yield ExperimentContext(scale=get_scale("tiny"))
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
