"""Parallel experiment engine: determinism and reporting guarantees.

The runner's core promise is that fanning tasks across a process pool
changes wall-clock only — every trained weight and baseline prediction is
bitwise-identical to serial execution, for any pool size.  These tests
run the same small task set serially and under two pool sizes in fresh
cache directories and compare the artifacts exactly.
"""

import os

import numpy as np
import pytest

from repro.config import get_scale
from repro.exceptions import ConfigError
from repro.experiments import runner
from repro.experiments.context import BASELINE_SPECS, MODEL_SPECS, ExperimentContext
from repro.experiments.runner import (
    EXPERIMENT_TASKS,
    ExperimentTask,
    baseline_task,
    model_task,
    run_tasks,
    tasks_for,
)

#: Small but representative: one numpy-trained model, one sklearn-style
#: baseline, one trivial baseline.
TASKS = (baseline_task("average"), baseline_task("gbdt"), model_task("basic"))


def run_with_workers(tmp_path_factory, workers):
    """Execute TASKS in a fresh cache; return comparable raw artifacts."""
    cache = tmp_path_factory.mktemp(f"runner_cache_w{workers}")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    try:
        context = ExperimentContext(scale=get_scale("tiny"))
        report = run_tasks(context, TASKS, workers=workers)
        trained = context.trained("basic")
        return {
            "report": report,
            "weights": trained.model.state_dict(),
            "predictions": trained.test_predictions.copy(),
            "history": tuple(trained.history.train_loss),
            "baselines": {
                key: context.baseline(key).test_predictions.copy()
                for key in ("average", "gbdt")
            },
        }
    finally:
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    return {
        workers: run_with_workers(tmp_path_factory, workers)
        for workers in (1, 2, 3)
    }


def assert_same_artifacts(left, right):
    assert left["history"] == right["history"]
    np.testing.assert_array_equal(left["predictions"], right["predictions"])
    assert left["weights"].keys() == right["weights"].keys()
    for name, value in left["weights"].items():
        np.testing.assert_array_equal(value, right["weights"][name], err_msg=name)
    for key, value in left["baselines"].items():
        np.testing.assert_array_equal(value, right["baselines"][key], err_msg=key)


class TestDeterminism:
    def test_parallel_matches_serial_bitwise(self, runs):
        assert_same_artifacts(runs[1], runs[2])

    def test_pool_size_does_not_change_results(self, runs):
        assert_same_artifacts(runs[2], runs[3])

    def test_parallel_run_used_worker_processes(self, runs):
        pids = {result.pid for result in runs[2]["report"].results}
        assert os.getpid() not in pids


class TestReport:
    def test_fresh_caches_report_misses(self, runs):
        for workers, run in runs.items():
            report = run["report"]
            assert report.workers == workers
            assert report.cache_misses == len(TASKS)
            assert report.cache_hits == 0
            assert report.wall_seconds > 0
            assert report.task_seconds > 0

    def test_to_metrics_shape(self, runs):
        metrics = runs[1]["report"].to_metrics()
        assert metrics["runner.tasks"] == len(TASKS)
        assert set(metrics) == {
            "runner.workers",
            "runner.tasks",
            "runner.cache_hits",
            "runner.cache_misses",
            "runner.wall_seconds",
            "runner.prewarm_seconds",
            "runner.task_seconds",
        }

    def test_warm_cache_reports_hits(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        context = ExperimentContext(scale=get_scale("tiny"))
        tasks = (baseline_task("average"),)
        assert run_tasks(context, tasks, workers=1).cache_misses == 1
        second = ExperimentContext(scale=get_scale("tiny"))
        assert run_tasks(second, tasks, workers=1).cache_hits == 1


class TestTaskRegistry:
    def test_registered_tasks_reference_known_specs(self):
        for name, tasks in EXPERIMENT_TASKS.items():
            assert tasks, name
            for task in tasks:
                known = MODEL_SPECS if task.kind == "model" else BASELINE_SPECS
                assert task.key in known

    def test_tasks_for_unknown_experiment_is_empty(self):
        assert tasks_for("table1") == ()
        assert tasks_for("nonsense") == ()

    def test_task_identity_carries_seed_not_placement(self):
        assert model_task("basic", seed=5).task_id == "model:basic:5"
        assert baseline_task("gbdt").task_id == "baseline:gbdt"

    def test_rejects_unknown_kind_and_key(self):
        with pytest.raises(ConfigError):
            ExperimentTask("oracle", "basic")
        with pytest.raises(ConfigError):
            ExperimentTask("model", "no_such_model")
        with pytest.raises(ConfigError):
            run_tasks(None, TASKS, workers=0)


class TestRunExperiment:
    def test_unknown_experiment_name(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        context = ExperimentContext(scale=get_scale("tiny"))
        with pytest.raises(ConfigError):
            runner.run_experiment("nonsense", context)
