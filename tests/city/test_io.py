"""Tests for CSV import/export — the bring-your-own-data path."""

import csv

import numpy as np
import pytest

from repro.city import CityDataset, export_csv, import_csv, simulate_city
from repro.config import SimulationConfig
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def small_dataset():
    return simulate_city(
        SimulationConfig(n_areas=3, n_days=3, seed=5, base_demand_rate=0.8)
    )


@pytest.fixture(scope="module")
def csv_dir(small_dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("csv_bundle")
    export_csv(small_dataset, directory)
    return directory


class TestExport:
    def test_all_files_written(self, csv_dir):
        for name in ("orders.csv", "weather.csv", "traffic.csv", "areas.csv", "meta.csv"):
            assert (csv_dir / name).exists()

    def test_orders_row_count(self, csv_dir, small_dataset):
        with open(csv_dir / "orders.csv", newline="") as handle:
            n_rows = sum(1 for _ in csv.DictReader(handle))
        assert n_rows == small_dataset.n_orders


class TestRoundtrip:
    @pytest.fixture(scope="class")
    def reloaded(self, csv_dir):
        return import_csv(csv_dir)

    def test_dimensions(self, reloaded, small_dataset):
        assert reloaded.n_areas == small_dataset.n_areas
        assert reloaded.n_days == small_dataset.n_days
        assert reloaded.n_orders == small_dataset.n_orders

    def test_orders_identical(self, reloaded, small_dataset):
        np.testing.assert_array_equal(reloaded.orders, small_dataset.orders)

    def test_counts_identical(self, reloaded, small_dataset):
        np.testing.assert_array_equal(
            reloaded.valid_counts, small_dataset.valid_counts
        )
        np.testing.assert_array_equal(
            reloaded.invalid_counts, small_dataset.invalid_counts
        )

    def test_gap_queries_match(self, reloaded, small_dataset):
        for area in range(small_dataset.n_areas):
            assert reloaded.gap(area, 1, 600) == small_dataset.gap(area, 1, 600)

    def test_weather_close(self, reloaded, small_dataset):
        np.testing.assert_array_equal(
            reloaded.weather.types, small_dataset.weather.types
        )
        np.testing.assert_allclose(
            reloaded.weather.temperature, small_dataset.weather.temperature,
            atol=1e-3,
        )

    def test_traffic_identical(self, reloaded, small_dataset):
        np.testing.assert_array_equal(
            reloaded.traffic.level_counts, small_dataset.traffic.level_counts
        )

    def test_grid_preserved(self, reloaded, small_dataset):
        for a, b in zip(reloaded.grid, small_dataset.grid):
            assert a.archetype == b.archetype
            assert a.n_road_segments == b.n_road_segments

    def test_derived_sessions_match_simulator(self, reloaded, small_dataset):
        """Sessions are re-derived from orders; the derived summaries must
        agree with the simulator's own records."""
        ours = np.sort(reloaded.sessions, order=["pid"])
        theirs = np.sort(small_dataset.sessions, order=["pid"])
        np.testing.assert_array_equal(ours["pid"], theirs["pid"])
        np.testing.assert_array_equal(ours["first_ts"], theirs["first_ts"])
        np.testing.assert_array_equal(ours["last_ts"], theirs["last_ts"])
        np.testing.assert_array_equal(ours["n_calls"], theirs["n_calls"])
        np.testing.assert_array_equal(ours["served"], theirs["served"])

    def test_features_work_on_imported_data(self, reloaded):
        from repro.features import AreaDayProfile

        profile = AreaDayProfile(reloaded, 0, 1, 20)
        assert profile.supply_demand_vector(600).shape == (40,)


class TestImportValidation:
    def test_missing_orders_rejected(self, tmp_path):
        (tmp_path / "meta.csv").write_text("n_days,start_weekday,n_areas\n2,0,2\n")
        with pytest.raises(DataError):
            import_csv(tmp_path)

    def test_missing_meta_requires_explicit_dims(self, csv_dir, tmp_path):
        import shutil

        partial = tmp_path / "partial"
        shutil.copytree(csv_dir, partial)
        (partial / "meta.csv").unlink()
        with pytest.raises(DataError):
            import_csv(partial)
        # Explicit dimensions work.
        dataset = import_csv(partial, n_days=3, start_weekday=0, n_areas=3)
        assert dataset.n_days == 3

    def test_missing_areas_synthesised(self, csv_dir, tmp_path):
        import shutil

        partial = tmp_path / "noareas"
        shutil.copytree(csv_dir, partial)
        (partial / "areas.csv").unlink()
        dataset = import_csv(partial)
        assert dataset.n_areas == 3
        assert all(a.popularity == 1.0 for a in dataset.grid)

    def test_out_of_range_orders_rejected(self, csv_dir, tmp_path):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(csv_dir, broken)
        with open(broken / "orders.csv", "a", newline="") as handle:
            handle.write("99,600,123456,0,0,1\n")  # day 99 out of range
        with pytest.raises(DataError):
            import_csv(broken)
