"""Tests for order generation, the full simulator and the dataset container."""

import numpy as np
import pytest

from repro.city import (
    MINUTES_PER_DAY,
    CityDataset,
    CityGrid,
    OrderGenerator,
    RetryPolicy,
    simulate_city,
)
from repro.config import SimulationConfig, tiny_scale


@pytest.fixture(scope="module")
def tiny_dataset():
    return simulate_city(tiny_scale().simulation)


def _generate_one(arrival_rate=1.0, capacity_level=2, seed=0, **gen_kwargs):
    rng = np.random.default_rng(seed)
    grid = CityGrid.generate(3, rng)
    arrivals = rng.poisson(arrival_rate, size=MINUTES_PER_DAY)
    capacity = np.full(MINUTES_PER_DAY, capacity_level)
    dest_weights = np.full(3, 1 / 3)
    gen = OrderGenerator(**gen_kwargs)
    return gen.generate_area_day(
        grid[0], 0, arrivals, capacity, dest_weights, rng, pid_start=1000
    )


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_session_minutes == (policy.max_attempts - 1) * policy.max_delay

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RetryPolicy(retry_probability=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(min_delay=0)
        with pytest.raises(ValueError):
            RetryPolicy(min_delay=5, max_delay=2)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestOrderGenerator:
    def test_orders_sorted_by_ts(self):
        result = _generate_one()
        assert (np.diff(result.orders["ts"]) >= 0).all()

    def test_pids_offset_by_start(self):
        result = _generate_one()
        assert result.orders["pid"].min() >= 1000
        assert result.sessions["pid"].min() >= 1000

    def test_every_session_has_a_call(self):
        result = _generate_one()
        assert (result.sessions["n_calls"] >= 1).all()

    def test_session_call_counts_match_orders(self):
        result = _generate_one()
        order_counts = {}
        for pid in result.orders["pid"]:
            order_counts[pid] = order_counts.get(pid, 0) + 1
        for session in result.sessions:
            assert order_counts.get(session["pid"], 0) == session["n_calls"]

    def test_session_span_bounds_orders(self):
        result = _generate_one()
        for session in result.sessions:
            mask = result.orders["pid"] == session["pid"]
            ts = result.orders["ts"][mask]
            assert ts.min() == session["first_ts"]
            assert ts.max() == session["last_ts"]

    def test_served_session_has_exactly_one_valid_order(self):
        result = _generate_one()
        pids_valid = result.orders["pid"][result.orders["valid"]]
        assert len(pids_valid) == len(set(pids_valid.tolist()))
        served_pids = set(result.sessions["pid"][result.sessions["served"]].tolist())
        assert served_pids == set(pids_valid.tolist())

    def test_valid_order_is_sessions_last(self):
        # Once served, a passenger stops calling.
        result = _generate_one()
        orders = result.orders
        for session in result.sessions[result.sessions["served"]]:
            mask = orders["pid"] == session["pid"]
            ts = orders["ts"][mask]
            valid = orders["valid"][mask]
            assert valid[np.argmax(ts)]

    def test_session_length_bounded_by_policy(self):
        policy = RetryPolicy(max_attempts=3, max_delay=2)
        result = _generate_one(retry_policy=policy)
        span = result.sessions["last_ts"] - result.sessions["first_ts"]
        assert span.max() <= policy.max_session_minutes

    def test_zero_capacity_everything_invalid(self):
        result = _generate_one(capacity_level=0)
        assert not result.orders["valid"].any()
        assert not result.sessions["served"].any()

    def test_huge_capacity_everything_valid(self):
        result = _generate_one(capacity_level=1000)
        assert result.orders["valid"].all()
        assert result.sessions["served"].all()
        # No retries when everyone is served at first call.
        assert (result.sessions["n_calls"] == 1).all()

    def test_no_retry_policy_single_calls(self):
        policy = RetryPolicy(retry_probability=0.0)
        result = _generate_one(capacity_level=0, retry_policy=policy)
        assert (result.sessions["n_calls"] == 1).all()

    def test_deterministic_given_seed(self):
        a = _generate_one(seed=9)
        b = _generate_one(seed=9)
        np.testing.assert_array_equal(a.orders, b.orders)

    def test_invalid_generator_params(self):
        with pytest.raises(ValueError):
            OrderGenerator(idle_persistence=1.5)
        with pytest.raises(ValueError):
            OrderGenerator(max_idle_pool=-1)

    def test_wrong_shapes_rejected(self):
        rng = np.random.default_rng(0)
        grid = CityGrid.generate(1, rng)
        gen = OrderGenerator()
        with pytest.raises(ValueError):
            gen.generate_area_day(
                grid[0], 0, np.ones(5), np.ones(MINUTES_PER_DAY),
                np.ones(1), rng, pid_start=0,
            )


class TestCitySimulator:
    def test_dataset_dimensions(self, tiny_dataset):
        scale = tiny_scale()
        assert tiny_dataset.n_areas == scale.simulation.n_areas
        assert tiny_dataset.n_days == scale.simulation.n_days

    def test_orders_sorted_by_area_day(self, tiny_dataset):
        orders = tiny_dataset.orders
        keys = orders["origin"].astype(np.int64) * 10000 + orders["day"]
        assert (np.diff(keys) >= 0).all()

    def test_counts_match_orders(self, tiny_dataset):
        ds = tiny_dataset
        for area in (0, ds.n_areas - 1):
            for day in (0, ds.n_days - 1):
                orders = ds.area_day_orders(area, day)
                valid = orders[orders["valid"]]
                invalid = orders[~orders["valid"]]
                np.testing.assert_array_equal(
                    ds.valid_counts[area, day],
                    np.bincount(valid["ts"], minlength=MINUTES_PER_DAY),
                )
                np.testing.assert_array_equal(
                    ds.invalid_counts[area, day],
                    np.bincount(invalid["ts"], minlength=MINUTES_PER_DAY),
                )

    def test_gap_equals_invalid_count(self, tiny_dataset):
        ds = tiny_dataset
        orders = ds.area_day_orders(1, 2)
        t = 600
        manual = int(
            ((orders["ts"] >= t) & (orders["ts"] < t + 10) & ~orders["valid"]).sum()
        )
        assert ds.gap(1, 2, t, horizon=10) == manual

    def test_gap_series_matches_pointwise(self, tiny_dataset):
        ds = tiny_dataset
        series = ds.gap_series(0, 0)
        for t in (0, 100, 700, 1430, 1439):
            assert series[t] == ds.gap(0, 0, t)

    def test_gap_clipped_at_day_end(self, tiny_dataset):
        ds = tiny_dataset
        # Window extending past midnight only counts in-day invalid orders.
        assert ds.gap(0, 0, 1435, horizon=10) >= 0

    def test_demand_series_totals(self, tiny_dataset):
        ds = tiny_dataset
        series = ds.demand_series(2, 1)
        assert series.sum() == len(ds.area_day_orders(2, 1))

    def test_pids_globally_unique(self, tiny_dataset):
        pids = tiny_dataset.sessions["pid"]
        assert len(np.unique(pids)) == len(pids)

    def test_deterministic(self):
        cfg = SimulationConfig(n_areas=3, n_days=2, seed=321, base_demand_rate=1.0)
        a = simulate_city(cfg)
        b = simulate_city(cfg)
        np.testing.assert_array_equal(a.orders, b.orders)
        np.testing.assert_array_equal(a.traffic.level_counts, b.traffic.level_counts)

    def test_different_seeds_differ(self):
        a = simulate_city(SimulationConfig(n_areas=3, n_days=2, seed=1, base_demand_rate=1.0))
        b = simulate_city(SimulationConfig(n_areas=3, n_days=2, seed=2, base_demand_rate=1.0))
        assert len(a.orders) != len(b.orders) or not np.array_equal(a.orders, b.orders)

    def test_summary_keys(self, tiny_dataset):
        summary = tiny_dataset.summary()
        for key in ("n_areas", "n_days", "n_orders", "valid_fraction", "total_gap"):
            assert key in summary

    def test_weekly_periodicity_present(self, tiny_dataset):
        """Same weekday demand curves correlate more than weekday-vs-weekend."""
        from repro.city import Archetype

        ds = tiny_dataset

        def hourly(area, day):
            return ds.demand_series(area, day).reshape(24, 60).sum(axis=1)

        # Business areas have the starkest weekday/weekend contrast.
        candidates = ds.grid.by_archetype(Archetype.BUSINESS) or list(ds.grid)
        area = candidates[0].area_id
        # day 0 and day 7 share a weekday; day 5 is Saturday.
        same = np.corrcoef(hourly(area, 0), hourly(area, 7))[0, 1]
        cross = np.corrcoef(hourly(area, 0), hourly(area, 5))[0, 1]
        assert same > cross


class TestDatasetPersistence:
    def test_save_load_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "city.npz"
        tiny_dataset.save(path)
        loaded = CityDataset.load(path)
        np.testing.assert_array_equal(loaded.orders, tiny_dataset.orders)
        np.testing.assert_array_equal(loaded.sessions, tiny_dataset.sessions)
        np.testing.assert_array_equal(
            loaded.valid_counts, tiny_dataset.valid_counts
        )
        assert loaded.calendar == tiny_dataset.calendar
        assert [a.archetype for a in loaded.grid] == [
            a.archetype for a in tiny_dataset.grid
        ]

    def test_loaded_gap_queries_match(self, tiny_dataset, tmp_path):
        path = tmp_path / "city.npz"
        tiny_dataset.save(path)
        loaded = CityDataset.load(path)
        assert loaded.gap(0, 1, 480) == tiny_dataset.gap(0, 1, 480)
