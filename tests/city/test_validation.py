"""Tests for dataset validation (corruption/failure injection)."""

import copy

import numpy as np
import pytest

from repro.city import simulate_city, validate_dataset
from repro.city.dataset import CityDataset
from repro.config import SimulationConfig


@pytest.fixture(scope="module")
def clean():
    return simulate_city(
        SimulationConfig(n_areas=3, n_days=3, seed=9, base_demand_rate=0.8)
    )


def corrupted_copy(dataset, **overrides) -> CityDataset:
    """Rebuild the dataset with some arrays swapped for corrupted versions."""
    kwargs = dict(
        grid=dataset.grid,
        calendar=dataset.calendar,
        orders=dataset.orders.copy(),
        sessions=dataset.sessions.copy(),
        weather=dataset.weather,
        traffic=dataset.traffic,
        valid_counts=dataset.valid_counts.copy(),
        invalid_counts=dataset.invalid_counts.copy(),
    )
    kwargs.update(overrides)
    return CityDataset(**kwargs)


class TestCleanDataset:
    def test_no_problems(self, clean):
        assert validate_dataset(clean) == []


class TestCorruptionDetection:
    def test_count_mismatch_detected(self, clean):
        broken = corrupted_copy(clean)
        broken.valid_counts[0, 0, 600] += 5
        problems = validate_dataset(broken)
        assert any("valid_counts" in p for p in problems)

    def test_session_call_mismatch_detected(self, clean):
        broken = corrupted_copy(clean)
        broken.sessions["n_calls"][0] += 3
        problems = validate_dataset(broken)
        assert any("call counts" in p for p in problems)

    def test_inverted_session_span_detected(self, clean):
        broken = corrupted_copy(clean)
        broken.sessions["first_ts"][0] = broken.sessions["last_ts"][0] + 5
        problems = validate_dataset(broken)
        assert any("last_ts before first_ts" in p for p in problems)

    def test_duplicate_served_passenger_detected(self, clean):
        broken = corrupted_copy(clean)
        # Force two valid orders onto one pid.
        valid_rows = np.flatnonzero(broken.orders["valid"])
        assert len(valid_rows) >= 2
        broken.orders["pid"][valid_rows[1]] = broken.orders["pid"][valid_rows[0]]
        problems = validate_dataset(broken)
        assert any("multiple valid orders" in p for p in problems)

    def test_duplicate_session_pid_detected(self, clean):
        broken = corrupted_copy(clean)
        broken.sessions["pid"][1] = broken.sessions["pid"][0]
        problems = validate_dataset(broken)
        assert any("duplicate session pids" in p for p in problems)

    def test_problem_cap_respected(self, clean):
        broken = corrupted_copy(clean)
        broken.valid_counts += 100
        broken.invalid_counts += 100
        broken.sessions["n_calls"] += 1
        problems = validate_dataset(broken, max_problems=2)
        assert len(problems) == 2


class TestImportedDataValidates:
    def test_csv_roundtrip_is_clean(self, clean, tmp_path):
        from repro.city import export_csv, import_csv

        export_csv(clean, tmp_path)
        reloaded = import_csv(tmp_path)
        assert validate_dataset(reloaded) == []
