"""Tests for the event-surge extension."""

import numpy as np
import pytest

from repro.city import (
    Archetype,
    CityGrid,
    Event,
    EventGenerator,
    EventSchedule,
    simulate_city,
)
from repro.config import SimulationConfig


class TestEvent:
    def test_profile_shape_and_values(self):
        event = Event(area_id=0, day=1, start_minute=600, duration_minutes=120,
                      multiplier=3.0)
        profile = event.intensity_profile()
        assert profile.shape == (1440,)
        assert profile[599] == 1.0
        assert profile[600] == 3.0
        assert profile[719] == pytest.approx(4.5)  # end-of-event burst
        assert profile[720] == 1.0

    def test_end_clipped_to_day(self):
        event = Event(area_id=0, day=0, start_minute=1400, duration_minutes=120,
                      multiplier=2.0)
        assert event.end_minute == 1440
        assert event.intensity_profile().shape == (1440,)

    def test_validation(self):
        with pytest.raises(ValueError):
            Event(0, 0, start_minute=2000, duration_minutes=60, multiplier=2.0)
        with pytest.raises(ValueError):
            Event(0, 0, start_minute=600, duration_minutes=0, multiplier=2.0)
        with pytest.raises(ValueError):
            Event(0, 0, start_minute=600, duration_minutes=60, multiplier=1.0)


class TestEventSchedule:
    def test_lookup(self):
        events = [
            Event(0, 1, 600, 60, 2.0),
            Event(0, 2, 600, 60, 2.0),
            Event(1, 1, 600, 60, 2.0),
        ]
        schedule = EventSchedule(events=events)
        assert len(schedule) == 3
        assert len(schedule.for_area_day(0, 1)) == 1
        assert len(schedule.for_area_day(2, 1)) == 0

    def test_multipliers_combine(self):
        events = [Event(0, 1, 600, 60, 2.0), Event(0, 1, 630, 60, 3.0)]
        schedule = EventSchedule(events=events)
        profile = schedule.demand_multiplier(0, 1)
        assert profile[615] == pytest.approx(2.0)
        # Overlap region multiplies (burst factors may apply too).
        assert profile[650] >= 6.0

    def test_empty_schedule_identity(self):
        schedule = EventSchedule(events=[])
        np.testing.assert_array_equal(schedule.demand_multiplier(0, 0), 1.0)


class TestEventGenerator:
    def test_expected_count(self):
        rng = np.random.default_rng(0)
        grid = CityGrid.generate(10, rng)
        schedule = EventGenerator(events_per_week=7.0).generate(grid, 70, rng)
        # Expectation = 7 * 70/7 = 70; Poisson spread is ~±25.
        assert 35 <= len(schedule) <= 110

    def test_zero_rate_no_events(self):
        rng = np.random.default_rng(0)
        grid = CityGrid.generate(4, rng)
        assert len(EventGenerator(0.0).generate(grid, 14, rng)) == 0

    def test_entertainment_hosts_most(self):
        rng = np.random.default_rng(1)
        grid = CityGrid.generate(30, rng)
        schedule = EventGenerator(events_per_week=80.0).generate(grid, 70, rng)
        by_archetype = {}
        for event in schedule.events:
            arch = grid[event.area_id].archetype
            by_archetype[arch] = by_archetype.get(arch, 0) + 1
        ent = by_archetype.get(Archetype.ENTERTAINMENT, 0)
        sub = by_archetype.get(Archetype.SUBURBAN, 0)
        n_ent = len(grid.by_archetype(Archetype.ENTERTAINMENT))
        n_sub = max(len(grid.by_archetype(Archetype.SUBURBAN)), 1)
        assert ent / max(n_ent, 1) > sub / n_sub

    def test_event_times_in_window(self):
        rng = np.random.default_rng(2)
        grid = CityGrid.generate(5, rng)
        schedule = EventGenerator(events_per_week=30.0).generate(grid, 14, rng)
        for event in schedule.events:
            assert 14 * 60 <= event.start_minute < 21 * 60
            assert 90 <= event.duration_minutes < 240

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            EventGenerator(-1.0)


class TestSimulationWithEvents:
    def test_events_raise_demand(self):
        base_config = SimulationConfig(
            n_areas=4, n_days=7, seed=123, base_demand_rate=1.0
        )
        event_config = SimulationConfig(
            n_areas=4, n_days=7, seed=123, base_demand_rate=1.0,
            events_per_week=25.0,
        )
        base = simulate_city(base_config)
        with_events = simulate_city(event_config)
        assert with_events.n_orders > base.n_orders

    def test_default_config_has_no_events(self):
        from repro.city import CitySimulator

        simulator = CitySimulator(SimulationConfig(n_areas=2, n_days=2, seed=0,
                                                   base_demand_rate=0.5))
        simulator.simulate()
        assert len(simulator.last_events) == 0
