"""Tests for the weather and traffic simulators."""

import numpy as np
import pytest

from repro.city import (
    MINUTES_PER_DAY,
    N_CONGESTION_LEVELS,
    N_WEATHER_TYPES,
    WEATHER_TYPES,
    CityGrid,
    TrafficSeries,
    TrafficSimulator,
    WeatherSeries,
    WeatherSimulator,
)
from repro.city.weather import DEMAND_BOOST, SUPPLY_PENALTY


@pytest.fixture(scope="module")
def weather():
    return WeatherSimulator().simulate(7, np.random.default_rng(3))


class TestWeatherSimulator:
    def test_shapes(self, weather):
        assert weather.types.shape == (7, MINUTES_PER_DAY)
        assert weather.temperature.shape == (7, MINUTES_PER_DAY)
        assert weather.pm25.shape == (7, MINUTES_PER_DAY)

    def test_types_in_vocabulary(self, weather):
        assert weather.types.min() >= 0
        assert weather.types.max() < N_WEATHER_TYPES

    def test_vocabulary_size_matches_paper(self):
        # Table I: weather type embedding is R^10 -> R^3.
        assert len(WEATHER_TYPES) == 10

    def test_pm25_positive(self, weather):
        assert (weather.pm25 >= 1.0).all()

    def test_temperature_diurnal_cycle(self, weather):
        # Afternoons warmer than pre-dawn on average.
        afternoon = weather.temperature[:, 14 * 60 : 16 * 60].mean()
        predawn = weather.temperature[:, 3 * 60 : 5 * 60].mean()
        assert afternoon > predawn

    def test_weather_is_sticky(self, weather):
        # Type changes are rare at minute resolution (30-minute steps).
        changes = (np.diff(weather.types.ravel()) != 0).mean()
        assert changes < 0.01

    def test_deterministic_given_seed(self):
        a = WeatherSimulator().simulate(3, np.random.default_rng(11))
        b = WeatherSimulator().simulate(3, np.random.default_rng(11))
        np.testing.assert_array_equal(a.types, b.types)
        np.testing.assert_allclose(a.temperature, b.temperature)

    def test_at_returns_tuple(self, weather):
        wc_type, temp, pm = weather.at(0, 600)
        assert 0 <= wc_type < N_WEATHER_TYPES
        assert isinstance(temp, float)
        assert pm >= 0

    def test_multiplier_tables_complete(self):
        assert DEMAND_BOOST.shape == (N_WEATHER_TYPES,)
        assert SUPPLY_PENALTY.shape == (N_WEATHER_TYPES,)
        # Bad weather always raises demand and lowers supply vs sunny.
        assert DEMAND_BOOST[5] > DEMAND_BOOST[0]
        assert SUPPLY_PENALTY[5] < SUPPLY_PENALTY[0]

    def test_demand_multiplier_shape(self, weather):
        mult = weather.demand_multiplier(0)
        assert mult.shape == (MINUTES_PER_DAY,)
        assert (mult >= 1.0).all()

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            WeatherSimulator().simulate(0, np.random.default_rng(0))

    def test_series_shape_validation(self):
        with pytest.raises(ValueError):
            WeatherSeries(
                types=np.zeros((2, 100), dtype=np.int8),
                temperature=np.zeros((2, 100), dtype=np.float32),
                pm25=np.zeros((2, 100), dtype=np.float32),
            )


class TestTrafficSimulator:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(5)
        grid = CityGrid.generate(4, rng)
        weather = WeatherSimulator().simulate(2, rng)
        minutes = np.arange(MINUTES_PER_DAY, dtype=float)
        # Two demand bumps to create congestion peaks.
        intensity = 0.2 + 2.0 * np.exp(-0.5 * ((minutes - 480) / 60) ** 2)
        counts = TrafficSimulator().simulate_area_day(
            grid[0], 0, intensity, weather, rng
        )
        return grid, counts, intensity

    def test_shape(self, setup):
        _, counts, _ = setup
        assert counts.shape == (MINUTES_PER_DAY, N_CONGESTION_LEVELS)

    def test_segment_conservation(self, setup):
        grid, counts, _ = setup
        np.testing.assert_array_equal(
            counts.sum(axis=1), np.full(MINUTES_PER_DAY, grid[0].n_road_segments)
        )

    def test_counts_non_negative(self, setup):
        _, counts, _ = setup
        assert (counts >= 0).all()

    def test_rush_hour_more_congested_than_night(self, setup):
        _, counts, _ = setup
        series = TrafficSeries(level_counts=counts[None, None])
        congestion = series.congestion_index(0, 0)
        assert congestion[450:510].mean() > congestion[180:240].mean()

    def test_congestion_index_in_unit_interval(self, setup):
        _, counts, _ = setup
        series = TrafficSeries(level_counts=counts[None, None])
        congestion = series.congestion_index(0, 0)
        assert (congestion >= 0).all() and (congestion <= 1).all()

    def test_wrong_intensity_shape_rejected(self):
        rng = np.random.default_rng(0)
        grid = CityGrid.generate(1, rng)
        weather = WeatherSimulator().simulate(1, rng)
        with pytest.raises(ValueError):
            TrafficSimulator().simulate_area_day(
                grid[0], 0, np.ones(10), weather, rng
            )

    def test_series_validation(self):
        with pytest.raises(ValueError):
            TrafficSeries(level_counts=np.zeros((2, 2, 1440, 3), dtype=np.int16))

    def test_invalid_coupling(self):
        with pytest.raises(ValueError):
            TrafficSimulator(demand_coupling=-1.0)
