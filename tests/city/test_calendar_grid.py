"""Tests for the simulation calendar and city grid."""

import numpy as np
import pytest

from repro.city import (
    Archetype,
    Area,
    CityGrid,
    SimulationCalendar,
    format_timeslot,
    parse_timeslot,
)


class TestCalendar:
    def test_day_of_week_cycles(self):
        cal = SimulationCalendar(n_days=14, start_weekday=0)
        assert cal.day_of_week(0) == 0
        assert cal.day_of_week(6) == 6
        assert cal.day_of_week(7) == 0

    def test_start_weekday_offset(self):
        cal = SimulationCalendar(n_days=7, start_weekday=5)
        assert cal.day_of_week(0) == 5
        assert cal.day_of_week(2) == 0

    def test_weekend_detection(self):
        cal = SimulationCalendar(n_days=7, start_weekday=0)
        assert not cal.is_weekend(4)  # Friday
        assert cal.is_weekend(5)      # Saturday
        assert cal.is_weekend(6)      # Sunday

    def test_weekday_name(self):
        cal = SimulationCalendar(n_days=7, start_weekday=0)
        assert cal.weekday_name(0) == "Monday"
        assert cal.weekday_name(6) == "Sunday"

    def test_days_with_weekday(self):
        cal = SimulationCalendar(n_days=21, start_weekday=0)
        assert cal.days_with_weekday(0) == [0, 7, 14]

    def test_days_with_weekday_before(self):
        cal = SimulationCalendar(n_days=21, start_weekday=0)
        assert cal.days_with_weekday(0, before=8) == [0, 7]
        assert cal.days_with_weekday(0, before=0) == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SimulationCalendar(n_days=0)
        with pytest.raises(ValueError):
            SimulationCalendar(n_days=5, start_weekday=7)

    def test_day_out_of_range(self):
        cal = SimulationCalendar(n_days=5)
        with pytest.raises(ValueError):
            cal.day_of_week(5)

    def test_invalid_weekday_query(self):
        cal = SimulationCalendar(n_days=5)
        with pytest.raises(ValueError):
            cal.days_with_weekday(7)


class TestTimeslotFormat:
    def test_format(self):
        assert format_timeslot(0) == "00:00"
        assert format_timeslot(450) == "07:30"
        assert format_timeslot(1439) == "23:59"

    def test_parse(self):
        assert parse_timeslot("07:30") == 450
        assert parse_timeslot("23:59") == 1439

    def test_roundtrip(self):
        for ts in (0, 1, 719, 1439):
            assert parse_timeslot(format_timeslot(ts)) == ts

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            format_timeslot(1440)
        with pytest.raises(ValueError):
            parse_timeslot("24:00")


class TestCityGrid:
    def test_generate_count(self):
        grid = CityGrid.generate(58, np.random.default_rng(0))
        assert grid.n_areas == 58
        assert len(grid) == 58

    def test_ids_dense_and_ordered(self):
        grid = CityGrid.generate(20, np.random.default_rng(1))
        for i, area in enumerate(grid):
            assert area.area_id == i

    def test_core_archetypes_present(self):
        for seed in range(10):
            grid = CityGrid.generate(5, np.random.default_rng(seed))
            archetypes = {a.archetype for a in grid}
            assert Archetype.RESIDENTIAL in archetypes
            assert Archetype.BUSINESS in archetypes
            assert Archetype.ENTERTAINMENT in archetypes

    def test_deterministic_given_seed(self):
        a = CityGrid.generate(12, np.random.default_rng(5))
        b = CityGrid.generate(12, np.random.default_rng(5))
        assert [x.archetype for x in a] == [y.archetype for y in b]
        assert [x.popularity for x in a] == [y.popularity for y in b]

    def test_popularity_positive(self):
        grid = CityGrid.generate(30, np.random.default_rng(2))
        assert all(a.popularity > 0 for a in grid)

    def test_by_archetype(self):
        grid = CityGrid.generate(30, np.random.default_rng(3))
        business = grid.by_archetype(Archetype.BUSINESS)
        assert all(a.archetype is Archetype.BUSINESS for a in business)

    def test_archetype_ids_shape(self):
        grid = CityGrid.generate(10, np.random.default_rng(4))
        codes = grid.archetype_ids()
        assert codes.shape == (10,)
        assert (codes >= 0).all() and (codes < len(Archetype)).all()

    def test_distance(self):
        a = Area(0, Archetype.MIXED, 1.0, 100, row=0, col=0)
        b = Area(1, Archetype.MIXED, 1.0, 100, row=3, col=4)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_invalid_n_areas(self):
        with pytest.raises(ValueError):
            CityGrid.generate(0, np.random.default_rng(0))

    def test_non_dense_ids_rejected(self):
        areas = [Area(1, Archetype.MIXED, 1.0, 100, 0, 0)]
        with pytest.raises(ValueError):
            CityGrid(areas)
