"""Tests for the demand and supply models."""

import numpy as np
import pytest

from repro.city import (
    MINUTES_PER_DAY,
    Archetype,
    CityGrid,
    DemandModel,
    SimulationCalendar,
    SupplyModel,
    WeatherSimulator,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(17)
    grid = CityGrid.generate(30, rng)
    calendar = SimulationCalendar(n_days=14, start_weekday=0)
    weather = WeatherSimulator().simulate(14, rng)
    return grid, calendar, weather


def _first(grid, archetype):
    areas = grid.by_archetype(archetype)
    assert areas, f"no {archetype} area generated"
    return areas[0]


class TestDemandModel:
    def test_intensity_shape_and_positive(self, setup):
        grid, calendar, weather = setup
        model = DemandModel()
        rng = np.random.default_rng(0)
        intensity = model.intensity(grid[0], 0, calendar, weather, rng)
        assert intensity.shape == (MINUTES_PER_DAY,)
        assert (intensity > 0).all()

    def test_residential_morning_peak_on_weekdays(self, setup):
        grid, _, _ = setup
        model = DemandModel()
        area = _first(grid, Archetype.RESIDENTIAL)
        curve = model.demand_curve(grid, area.area_id, weekend=False)
        morning = curve[7 * 60 : 9 * 60].mean()
        midnight = curve[2 * 60 : 4 * 60].mean()
        assert morning > 3 * midnight

    def test_business_evening_peak_dominates(self, setup):
        grid, _, _ = setup
        model = DemandModel()
        area = _first(grid, Archetype.BUSINESS)
        curve = model.demand_curve(grid, area.area_id, weekend=False)
        evening = curve[18 * 60 : 20 * 60].mean()
        early_afternoon = curve[15 * 60 : 16 * 60].mean()
        assert evening > early_afternoon

    def test_entertainment_weekend_surge(self, setup):
        """The paper's Fig. 1(a): entertainment demand jumps on weekends."""
        grid, _, _ = setup
        model = DemandModel()
        area = _first(grid, Archetype.ENTERTAINMENT)
        weekday = model.demand_curve(grid, area.area_id, weekend=False)
        weekend = model.demand_curve(grid, area.area_id, weekend=True)
        assert weekend[12 * 60 : 23 * 60].sum() > 2 * weekday[12 * 60 : 23 * 60].sum()

    def test_business_quieter_on_weekends(self, setup):
        """The paper's Fig. 1(b): commuter-area demand drops on Sundays."""
        grid, _, _ = setup
        model = DemandModel()
        area = _first(grid, Archetype.BUSINESS)
        weekday = model.demand_curve(grid, area.area_id, weekend=False)
        weekend = model.demand_curve(grid, area.area_id, weekend=True)
        assert weekend.sum() < weekday.sum()

    def test_popularity_scales_demand(self, setup):
        grid, calendar, weather = setup
        model = DemandModel(day_noise_sigma=0.0)
        same_arch = [
            a for a in grid if a.archetype is grid[0].archetype
        ]
        if len(same_arch) >= 2:
            a, b = same_arch[0], same_arch[1]
            rng = np.random.default_rng(0)
            ia = model.intensity(a, 0, calendar, weather, rng)
            ib = model.intensity(b, 0, calendar, weather, rng)
            ratio = ia.sum() / ib.sum()
            assert ratio == pytest.approx(a.popularity / b.popularity, rel=1e-6)

    def test_bad_weather_raises_demand(self, setup):
        grid, calendar, _ = setup
        model = DemandModel(day_noise_sigma=0.0)
        rng = np.random.default_rng(0)
        # Build two synthetic weather days: all sunny vs all heavy rain.
        from repro.city.weather import WeatherSeries

        sunny = WeatherSeries(
            types=np.zeros((1, MINUTES_PER_DAY), dtype=np.int8),
            temperature=np.full((1, MINUTES_PER_DAY), 20, dtype=np.float32),
            pm25=np.full((1, MINUTES_PER_DAY), 50, dtype=np.float32),
        )
        rainy = WeatherSeries(
            types=np.full((1, MINUTES_PER_DAY), 5, dtype=np.int8),
            temperature=np.full((1, MINUTES_PER_DAY), 12, dtype=np.float32),
            pm25=np.full((1, MINUTES_PER_DAY), 50, dtype=np.float32),
        )
        cal = SimulationCalendar(n_days=1)
        base = model.intensity(grid[0], 0, cal, sunny, np.random.default_rng(1))
        boosted = model.intensity(grid[0], 0, cal, rainy, np.random.default_rng(1))
        assert boosted.sum() > 1.2 * base.sum()

    def test_weather_coupling_zero_disables_effect(self, setup):
        grid, _, _ = setup
        from repro.city.weather import WeatherSeries

        rainy = WeatherSeries(
            types=np.full((1, MINUTES_PER_DAY), 5, dtype=np.int8),
            temperature=np.full((1, MINUTES_PER_DAY), 12, dtype=np.float32),
            pm25=np.full((1, MINUTES_PER_DAY), 50, dtype=np.float32),
        )
        cal = SimulationCalendar(n_days=1)
        model = DemandModel(weather_coupling=0.0, day_noise_sigma=0.0)
        with_rain = model.intensity(grid[0], 0, cal, rainy, np.random.default_rng(1))
        sunny = WeatherSeries(
            types=np.zeros((1, MINUTES_PER_DAY), dtype=np.int8),
            temperature=rainy.temperature,
            pm25=rainy.pm25,
        )
        without = model.intensity(grid[0], 0, cal, sunny, np.random.default_rng(1))
        np.testing.assert_allclose(with_rain, without)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DemandModel(base_rate=0.0)
        with pytest.raises(ValueError):
            DemandModel(weather_coupling=2.0)


class TestSupplyModel:
    def test_capacity_shape_and_non_negative(self, setup):
        grid, calendar, weather = setup
        model = DemandModel(day_noise_sigma=0.0)
        rng = np.random.default_rng(3)
        intensity = model.intensity(grid[0], 0, calendar, weather, rng)
        supply = SupplyModel()
        capacity = supply.capacity(
            grid[0], 0, intensity, weather, np.zeros(MINUTES_PER_DAY), rng
        )
        assert capacity.shape == (MINUTES_PER_DAY,)
        assert (capacity >= 0).all()
        assert np.issubdtype(capacity.dtype, np.integer)

    def test_mean_capacity_tracks_headroom(self, setup):
        grid, calendar, weather = setup
        model = DemandModel(day_noise_sigma=0.0)
        rng = np.random.default_rng(3)
        intensity = model.intensity(grid[0], 0, calendar, weather, rng)
        supply = SupplyModel(
            headroom=2.0, weather_coupling=0.0, congestion_coupling=0.0, noise_sigma=0.0
        )
        capacity = supply.capacity(
            grid[0], 0, intensity, weather, np.zeros(MINUTES_PER_DAY), rng
        )
        ratio = capacity.sum() / intensity.sum()
        assert 1.8 < ratio < 2.2

    def test_congestion_reduces_capacity(self, setup):
        grid, calendar, weather = setup
        model = DemandModel(day_noise_sigma=0.0)
        intensity = model.intensity(
            grid[0], 0, calendar, weather, np.random.default_rng(3)
        )
        supply = SupplyModel(noise_sigma=0.0, weather_coupling=0.0)
        free = supply.capacity(
            grid[0], 0, intensity, weather, np.zeros(MINUTES_PER_DAY),
            np.random.default_rng(4),
        )
        jammed = supply.capacity(
            grid[0], 0, intensity, weather, np.ones(MINUTES_PER_DAY),
            np.random.default_rng(4),
        )
        assert jammed.sum() < free.sum()

    def test_lag_shifts_capacity_peak(self, setup):
        grid, _, weather = setup
        rng = np.random.default_rng(5)
        minutes = np.arange(MINUTES_PER_DAY, dtype=float)
        spike = 0.1 + 5.0 * np.exp(-0.5 * ((minutes - 600) / 30) ** 2)
        lagged = SupplyModel(
            lag_minutes=60, noise_sigma=0.0, weather_coupling=0.0,
            congestion_coupling=0.0, smoothing_minutes=1,
        )
        capacity = lagged.capacity(
            grid[0], 0, spike, weather, np.zeros(MINUTES_PER_DAY), rng
        )
        # The capacity peak should be well after the demand spike at 600.
        assert abs(int(np.argmax(capacity)) - 660) <= 20

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SupplyModel(headroom=0.0)
        with pytest.raises(ValueError):
            SupplyModel(lag_minutes=-1)
        with pytest.raises(ValueError):
            SupplyModel(weather_coupling=1.5)

    def test_wrong_shapes_rejected(self, setup):
        grid, _, weather = setup
        supply = SupplyModel()
        with pytest.raises(ValueError):
            supply.capacity(
                grid[0], 0, np.ones(10), weather, np.zeros(MINUTES_PER_DAY),
                np.random.default_rng(0),
            )
        with pytest.raises(ValueError):
            supply.capacity(
                grid[0], 0, np.ones(MINUTES_PER_DAY), weather, np.zeros(10),
                np.random.default_rng(0),
            )
