"""Property-based tests (hypothesis) for the city simulator invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.city import (
    MINUTES_PER_DAY,
    CityGrid,
    OrderGenerator,
    RetryPolicy,
    SimulationCalendar,
)


@st.composite
def area_day_inputs(draw):
    """Random small arrival/capacity series plus a retry policy."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    arrival_rate = draw(st.floats(min_value=0.0, max_value=1.5))
    capacity_level = draw(st.integers(min_value=0, max_value=4))
    retry_probability = draw(st.floats(min_value=0.0, max_value=1.0))
    max_attempts = draw(st.integers(min_value=1, max_value=5))
    max_delay = draw(st.integers(min_value=1, max_value=5))
    return seed, arrival_rate, capacity_level, retry_probability, max_attempts, max_delay


def _generate(seed, arrival_rate, capacity_level, retry_probability, max_attempts, max_delay):
    rng = np.random.default_rng(seed)
    grid = CityGrid.generate(2, rng)
    arrivals = rng.poisson(arrival_rate, size=MINUTES_PER_DAY)
    capacity = np.full(MINUTES_PER_DAY, capacity_level)
    policy = RetryPolicy(
        retry_probability=retry_probability,
        max_attempts=max_attempts,
        min_delay=1,
        max_delay=max_delay,
    )
    generator = OrderGenerator(policy)
    result = generator.generate_area_day(
        grid[0], 0, arrivals, capacity, np.array([0.5, 0.5]), rng, pid_start=0
    )
    return result, policy, arrivals


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(area_day_inputs())
def test_sessions_match_arrivals(params):
    result, _, arrivals = _generate(*params)
    assert len(result.sessions) == arrivals.sum()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(area_day_inputs())
def test_orders_bounded_by_attempts(params):
    result, policy, arrivals = _generate(*params)
    assert len(result.orders) <= arrivals.sum() * policy.max_attempts
    assert len(result.orders) >= len(result.sessions) == arrivals.sum()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(area_day_inputs())
def test_served_sessions_have_exactly_one_valid_order(params):
    result, _, _ = _generate(*params)
    valid_pids = result.orders["pid"][result.orders["valid"]]
    # No passenger is served twice.
    assert len(valid_pids) == len(np.unique(valid_pids))
    served_pids = set(result.sessions["pid"][result.sessions["served"]].tolist())
    assert served_pids == set(valid_pids.tolist())


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(area_day_inputs())
def test_session_spans_respect_policy(params):
    result, policy, _ = _generate(*params)
    spans = result.sessions["last_ts"] - result.sessions["first_ts"]
    assert (spans >= 0).all()
    assert spans.max(initial=0) <= policy.max_session_minutes
    assert (result.sessions["n_calls"] <= policy.max_attempts).all()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(area_day_inputs())
def test_call_counts_conserved(params):
    result, _, _ = _generate(*params)
    assert result.sessions["n_calls"].sum() == len(result.orders)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=6),
)
def test_calendar_weekday_partition(n_days, start):
    """Every day belongs to exactly one weekday bucket."""
    calendar = SimulationCalendar(n_days=n_days, start_weekday=start)
    buckets = [calendar.days_with_weekday(w) for w in range(7)]
    all_days = sorted(day for bucket in buckets for day in bucket)
    assert all_days == list(range(n_days))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=8, max_value=100),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=1, max_value=99),
)
def test_calendar_before_is_prefix(n_days, start, before):
    calendar = SimulationCalendar(n_days=n_days, start_weekday=start)
    before = min(before, n_days)
    for weekday in range(7):
        full = calendar.days_with_weekday(weekday)
        prefix = calendar.days_with_weekday(weekday, before=before)
        assert prefix == [d for d in full if d < before]


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=500))
def test_grid_generation_valid(n_areas, seed):
    grid = CityGrid.generate(n_areas, np.random.default_rng(seed))
    assert grid.n_areas == n_areas
    assert all(a.popularity > 0 for a in grid)
    assert all(a.n_road_segments > 0 for a in grid)
    codes = grid.archetype_ids()
    assert codes.shape == (n_areas,)
