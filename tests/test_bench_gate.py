"""The bench regression gate: throughput floors plus tail-latency ceilings."""

from repro.bench import LATENCY_GATES, find_regressions


def _report(**metrics):
    return {"metrics": metrics}


def test_throughput_drop_flagged():
    baseline = _report(**{"train_epoch.items_per_sec": 1000.0})
    current = _report(**{"train_epoch.items_per_sec": 400.0})
    findings = find_regressions(current, baseline, factor=2.0)
    assert len(findings) == 1 and "train_epoch.items_per_sec" in findings[0]


def test_latency_increase_flagged():
    baseline = _report(**{"serving.cold.p99_ms": 10.0, "serving.warm.p99_ms": 1.0})
    current = _report(**{"serving.cold.p99_ms": 25.0, "serving.warm.p99_ms": 1.1})
    findings = find_regressions(current, baseline, factor=2.0)
    assert len(findings) == 1
    assert "serving.cold.p99_ms" in findings[0]
    assert "above" in findings[0]


def test_latency_within_factor_passes():
    baseline = _report(**{name: 5.0 for name in LATENCY_GATES})
    current = _report(**{name: 9.0 for name in LATENCY_GATES})
    assert find_regressions(current, baseline, factor=2.0) == []


def test_faster_and_lower_latency_passes():
    baseline = _report(
        **{"serving.cold.items_per_sec": 700.0, "serving.cold.p99_ms": 50.0}
    )
    current = _report(
        **{"serving.cold.items_per_sec": 8000.0, "serving.cold.p99_ms": 5.0}
    )
    assert find_regressions(current, baseline) == []


def test_fleet_latency_gate_flagged():
    baseline = _report(**{"serving.fleet.p99_ms": 20.0})
    current = _report(**{"serving.fleet.p99_ms": 90.0})
    findings = find_regressions(current, baseline, factor=2.0)
    assert len(findings) == 1 and "serving.fleet.p99_ms" in findings[0]


def test_fleet_items_per_sec_drop_flagged():
    """The batched legs ride the generic items_per_sec sweep — any
    ``*.items_per_sec`` present in both reports is gated."""
    baseline = _report(**{
        "serving.fleet.items_per_sec": 150.0,
        "serving.fleet.batch.items_per_sec": 2000.0,
    })
    current = _report(**{
        "serving.fleet.items_per_sec": 148.0,
        "serving.fleet.batch.items_per_sec": 600.0,
    })
    findings = find_regressions(current, baseline, factor=2.0)
    assert len(findings) == 1
    assert "serving.fleet.batch.items_per_sec" in findings[0]


def test_missing_metrics_ignored():
    assert find_regressions(_report(), _report()) == []
    baseline = _report(**{"serving.cold.p99_ms": 5.0})
    assert find_regressions(_report(), baseline) == []
