"""Unit tests for the autograd Tensor: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradient, concat


RNG = np.random.default_rng(1234)


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_integer_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert np.issubdtype(t.dtype, np.floating)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_ensure_passes_tensor_through(self):
        t = Tensor([1.0])
        assert Tensor.ensure(t) is t

    def test_ensure_wraps_array(self):
        out = Tensor.ensure(np.ones(3))
        assert isinstance(out, Tensor)

    def test_item_on_scalar(self):
        assert Tensor(2.5).item() == pytest.approx(2.5)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2.0).detach()
        assert not d.requires_grad

    def test_len(self):
        assert len(Tensor([1.0, 2.0])) == 2


class TestForwardValues:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        np.testing.assert_allclose((Tensor([1.0]) + 1.0).data, [2.0])

    def test_radd(self):
        np.testing.assert_allclose((1.0 + Tensor([1.0])).data, [2.0])

    def test_sub(self):
        np.testing.assert_allclose((Tensor([3.0]) - Tensor([1.0])).data, [2.0])

    def test_rsub(self):
        np.testing.assert_allclose((5.0 - Tensor([2.0])).data, [3.0])

    def test_mul(self):
        np.testing.assert_allclose((Tensor([2.0]) * Tensor([4.0])).data, [8.0])

    def test_div(self):
        np.testing.assert_allclose((Tensor([8.0]) / Tensor([2.0])).data, [4.0])

    def test_rdiv(self):
        np.testing.assert_allclose((8.0 / Tensor([2.0])).data, [4.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0], [4.0]])
        np.testing.assert_allclose((a @ b).data, [[11.0]])

    def test_reshape(self):
        out = Tensor(np.arange(6.0)).reshape(2, 3)
        assert out.shape == (2, 3)

    def test_transpose(self):
        out = Tensor(np.ones((2, 3))).T
        assert out.shape == (3, 2)

    def test_sum_all(self):
        assert Tensor([[1.0, 2.0], [3.0, 4.0]]).sum().item() == pytest.approx(10.0)

    def test_sum_axis(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]).sum(axis=0)
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_mean(self):
        assert Tensor([1.0, 2.0, 3.0]).mean().item() == pytest.approx(2.0)

    def test_mean_axis(self):
        out = Tensor([[1.0, 3.0], [2.0, 4.0]]).mean(axis=1)
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_abs(self):
        np.testing.assert_allclose(Tensor([-1.0, 2.0]).abs().data, [1.0, 2.0])

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.5])
        np.testing.assert_allclose(x.exp().log().data, x.data)

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_clip_min(self):
        np.testing.assert_allclose(Tensor([-1.0, 2.0]).clip_min(0.0).data, [0.0, 2.0])

    def test_slice_cols(self):
        out = Tensor(np.arange(12.0).reshape(3, 4)).slice_cols(1, 3)
        assert out.shape == (3, 2)
        np.testing.assert_allclose(out.data[0], [1.0, 2.0])

    def test_gather_rows(self):
        table = Tensor(np.arange(12.0).reshape(4, 3))
        out = table.gather_rows(np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[6.0, 7.0, 8.0], [0.0, 1.0, 2.0]])

    def test_concat_axis1(self):
        out = concat([Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))], axis=1)
        assert out.shape == (2, 5)

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([], axis=1)


class TestBackward:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 3.0).backward()
        (t * 3.0).backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_zero_grad(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 3.0).backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_grad(self):
        # y = x*x + x*x should give dy/dx = 4x through two paths
        t = Tensor([3.0], requires_grad=True)
        a = t * t
        b = t * t
        (a + b).backward()
        np.testing.assert_allclose(t.grad, [12.0])

    def test_reused_node_grad(self):
        # z = (x + 1) used twice
        t = Tensor([1.0], requires_grad=True)
        y = t + 1.0
        (y * y).backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_broadcast_add_grad_shapes(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))

    def test_broadcast_scalar_like_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((1, 3)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (1, 3)
        np.testing.assert_allclose(b.grad, [[2.0, 2.0, 2.0]])


class TestGradientChecks:
    """Finite-difference validation of each op's backward rule."""

    def test_add(self):
        x = RNG.normal(size=(3, 4))
        other = Tensor(RNG.normal(size=(3, 4)))
        check_gradient(lambda t: (t + other).sum(), x)

    def test_sub(self):
        x = RNG.normal(size=(3, 4))
        other = Tensor(RNG.normal(size=(3, 4)))
        check_gradient(lambda t: (other - t).sum(), x)

    def test_mul_broadcast(self):
        x = RNG.normal(size=(3, 1))
        other = Tensor(RNG.normal(size=(3, 4)))
        check_gradient(lambda t: (t * other).sum(), x)

    def test_div(self):
        x = RNG.normal(size=(3,)) + 5.0
        other = Tensor(RNG.normal(size=(3,)))
        check_gradient(lambda t: (other / t).sum(), x)

    def test_matmul_left(self):
        x = RNG.normal(size=(2, 4))
        w = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda t: (t @ w).sum(), x)

    def test_matmul_right(self):
        x = RNG.normal(size=(4, 3))
        a = Tensor(RNG.normal(size=(2, 4)))
        check_gradient(lambda t: (a @ t).sum(), x)

    def test_pow(self):
        x = np.abs(RNG.normal(size=(3,))) + 1.0
        check_gradient(lambda t: (t ** 3).sum(), x)

    def test_reshape(self):
        x = RNG.normal(size=(2, 6))
        check_gradient(lambda t: (t.reshape(3, 4) ** 2).sum(), x)

    def test_transpose(self):
        x = RNG.normal(size=(2, 3))
        w = Tensor(RNG.normal(size=(2, 4)))
        check_gradient(lambda t: (t.T @ w).sum(), x)

    def test_sum_axis_keepdims(self):
        x = RNG.normal(size=(3, 4))
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(), x)

    def test_mean_axis(self):
        x = RNG.normal(size=(4, 3))
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), x)

    def test_abs_away_from_zero(self):
        x = RNG.normal(size=(5,)) + np.sign(RNG.normal(size=(5,))) * 2.0
        check_gradient(lambda t: t.abs().sum(), x)

    def test_exp(self):
        x = RNG.normal(size=(4,))
        check_gradient(lambda t: t.exp().sum(), x)

    def test_log(self):
        x = np.abs(RNG.normal(size=(4,))) + 1.0
        check_gradient(lambda t: t.log().sum(), x)

    def test_clip_min(self):
        x = RNG.normal(size=(6,)) * 3.0 + 0.5
        x = x[np.abs(x - 0.0) > 0.1]  # stay away from the kink
        check_gradient(lambda t: t.clip_min(0.0).sum(), x)

    def test_slice_cols(self):
        x = RNG.normal(size=(3, 5))
        check_gradient(lambda t: (t.slice_cols(1, 4) ** 2).sum(), x)

    def test_gather_rows(self):
        x = RNG.normal(size=(5, 3))
        ids = np.array([0, 2, 2, 4])
        check_gradient(lambda t: (t.gather_rows(ids) ** 2).sum(), x)

    def test_concat(self):
        x = RNG.normal(size=(2, 3))
        other = Tensor(RNG.normal(size=(2, 2)))
        check_gradient(lambda t: (concat([t, other], axis=1) ** 2).sum(), x)
