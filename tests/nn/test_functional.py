"""Tests for leaky ReLU, softmax and dropout."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradient
from repro.nn import functional as F


RNG = np.random.default_rng(99)


class TestLeakyRelu:
    def test_positive_passthrough(self):
        out = F.leaky_relu(Tensor([1.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_negative_scaled(self):
        out = F.leaky_relu(Tensor([-1.0, -2.0]))
        np.testing.assert_allclose(out.data, [-0.001, -0.002])

    def test_paper_definition(self):
        # LReL(x) = max(0.001 x, x)
        x = RNG.normal(size=100)
        out = F.leaky_relu(Tensor(x))
        np.testing.assert_allclose(out.data, np.maximum(0.001 * x, x))

    def test_custom_slope(self):
        out = F.leaky_relu(Tensor([-10.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-1.0])

    def test_gradient(self):
        x = RNG.normal(size=(4, 3)) * 2.0
        x[np.abs(x) < 0.05] += 0.5  # keep away from the kink
        check_gradient(lambda t: F.leaky_relu(t).sum(), x)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = F.softmax(Tensor(RNG.normal(size=(5, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5))

    def test_output_positive(self):
        out = F.softmax(Tensor(RNG.normal(size=(5, 7)) * 10))
        assert (out.data > 0).all()

    def test_invariant_to_shift(self):
        x = RNG.normal(size=(2, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b)

    def test_large_values_stable(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_gradient(self):
        x = RNG.normal(size=(3, 7))
        weights = Tensor(RNG.normal(size=(3, 7)))
        check_gradient(lambda t: (F.softmax(t) * weights).sum(), x)

    def test_gradient_axis0(self):
        x = RNG.normal(size=(4, 2))
        weights = Tensor(RNG.normal(size=(4, 2)))
        check_gradient(lambda t: (F.softmax(t, axis=0) * weights).sum(), x)


class TestDropout:
    def test_identity_when_not_training(self):
        x = Tensor(RNG.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_identity_when_p_zero(self):
        x = Tensor(RNG.normal(size=(4,)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_zeroes_roughly_p_fraction(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        frac_zero = (out.data == 0).mean()
        assert 0.45 < frac_zero < 0.55

    def test_inverted_scaling_preserves_mean(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((500, 500)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, training=True)
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), -0.1, training=True)

    def test_gradient_masked_like_forward(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((6, 6)), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        # Grad is zero exactly where output was dropped, 1/keep elsewhere.
        dropped = out.data == 0
        assert (x.grad[dropped] == 0).all()
        np.testing.assert_allclose(x.grad[~dropped], 2.0)
