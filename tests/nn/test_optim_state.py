"""Optimizer and scheduler state-dict round-trips (checkpoint substrate)."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    ConstantSchedule,
    CosineDecay,
    Parameter,
    StepDecay,
    load_state,
    save_state,
)


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    return [
        Parameter(rng.normal(size=(3, 2))),
        Parameter(rng.normal(size=(4,))),
    ]


def fake_step(params, rng):
    for p in params:
        p.grad = rng.normal(size=p.data.shape)


class TestAdamStateDict:
    def test_roundtrip_through_npz(self, tmp_path):
        """Save after k steps, reload into a fresh optimizer, continue:
        both trajectories must be bitwise identical."""
        rng = np.random.default_rng(7)
        params_a = make_params(1)
        opt_a = Adam(params_a, lr=0.01, beta1=0.8, beta2=0.99, weight_decay=0.01)
        grads = [
            [np.asarray(rng.normal(size=p.data.shape)) for p in params_a]
            for _ in range(6)
        ]
        for g in grads[:3]:
            for p, grad in zip(params_a, g):
                p.grad = grad.copy()
            opt_a.step()

        state = opt_a.state_dict()
        # Round-trip every array through an .npz archive (as the
        # Checkpoint bundle does) and the scalars through plain floats.
        arrays = {f"m/{i}": m for i, m in enumerate(state["m"])}
        arrays.update({f"v/{i}": v for i, v in enumerate(state["v"])})
        path = tmp_path / "adam.npz"
        save_state(arrays, path)
        loaded = load_state(path)
        restored = dict(
            state,
            m=[loaded[f"m/{i}"] for i in range(len(state["m"]))],
            v=[loaded[f"v/{i}"] for i in range(len(state["v"]))],
        )

        params_b = make_params(2)  # different init: state load overwrites moments
        for pa, pb in zip(params_a, params_b):
            pb.data = pa.data.copy()
        opt_b = Adam(params_b, lr=0.5)  # hyper-params come from the state dict
        opt_b.load_state_dict(restored)
        assert opt_b._step_count == 3
        assert opt_b.lr == 0.01
        assert opt_b.beta1 == 0.8

        for g in grads[3:]:
            for p, grad in zip(params_a, g):
                p.grad = grad.copy()
            for p, grad in zip(params_b, g):
                p.grad = grad.copy()
            opt_a.step()
            opt_b.step()
        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        params = make_params()
        opt = Adam(params)
        fake_step(params, np.random.default_rng(0))
        opt.step()
        state = opt.state_dict()
        state["m"][0][:] = 99.0
        assert not np.any(opt._m[0] == 99.0)

    def test_type_mismatch_rejected(self):
        params = make_params()
        opt = Adam(params)
        sgd_state = SGD(make_params()).state_dict()
        with pytest.raises(ValueError, match="type mismatch"):
            opt.load_state_dict(sgd_state)

    def test_buffer_length_mismatch_rejected(self):
        opt = Adam(make_params())
        state = opt.state_dict()
        state["m"] = state["m"][:1]
        with pytest.raises(ValueError, match="entries"):
            opt.load_state_dict(state)

    def test_buffer_shape_mismatch_rejected(self):
        opt = Adam(make_params())
        state = opt.state_dict()
        state["m"][0] = np.zeros((9, 9))
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(state)


class TestSGDStateDict:
    def test_momentum_roundtrip(self):
        rng = np.random.default_rng(3)
        params_a = make_params(5)
        opt_a = SGD(params_a, lr=0.1, momentum=0.9)
        for _ in range(3):
            fake_step(params_a, np.random.default_rng(11))
            opt_a.step()

        params_b = make_params(6)
        for pa, pb in zip(params_a, params_b):
            pb.data = pa.data.copy()
        opt_b = SGD(params_b, lr=0.9)
        opt_b.load_state_dict(opt_a.state_dict())
        assert opt_b.lr == 0.1
        assert opt_b.momentum == 0.9

        grad = [np.asarray(rng.normal(size=p.data.shape)) for p in params_a]
        for opt, params in ((opt_a, params_a), (opt_b, params_b)):
            for p, g in zip(params, grad):
                p.grad = g.copy()
            opt.step()
        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestSchedulerStateDict:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda opt: ConstantSchedule(opt),
            lambda opt: StepDecay(opt, step_size=2, gamma=0.5),
            lambda opt: CosineDecay(opt, total_epochs=10),
        ],
    )
    def test_resumed_schedule_matches_straight_run(self, factory):
        opt_a = Adam(make_params(), lr=0.02)
        sched_a = factory(opt_a)
        lrs_a = [sched_a.step() for _ in range(8)]

        opt_b = Adam(make_params(), lr=0.02)
        sched_b = factory(opt_b)
        for _ in range(4):
            sched_b.step()
        state = sched_b.state_dict()

        opt_c = Adam(make_params(), lr=0.999)  # overwritten by the restore
        sched_c = factory(opt_c)
        sched_c.load_state_dict(state)
        assert sched_c.epoch == 4
        assert opt_c.lr == opt_b.lr
        lrs_c = [sched_c.step() for _ in range(4)]
        assert lrs_c == lrs_a[4:]

    def test_type_mismatch_rejected(self):
        opt = Adam(make_params())
        state = ConstantSchedule(opt).state_dict()
        with pytest.raises(ValueError, match="type mismatch"):
            StepDecay(Adam(make_params()), step_size=2).load_state_dict(state)
