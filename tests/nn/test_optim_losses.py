"""Tests for optimisers, losses and serialization."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Dense,
    Parameter,
    Sequential,
    Tensor,
    check_gradient,
    huber_loss,
    iterate_minibatches,
    load_state,
    load_weights,
    losses,
    mae_loss,
    mse_loss,
    save_state,
    save_weights,
)


RNG = np.random.default_rng(7)


class TestLosses:
    def test_mse_value(self):
        loss = mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_mae_value(self):
        loss = mae_loss(Tensor([1.0, -2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_huber_quadratic_region(self):
        # |err| < delta: huber = err^2 / 2
        loss = huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.125)

    def test_huber_linear_region(self):
        # |err| = 3, delta = 1: huber = delta*(|err| - delta/2) = 2.5
        loss = huber_loss(Tensor([3.0]), Tensor([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(2.5)

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            huber_loss(Tensor([1.0]), Tensor([0.0]), delta=0.0)

    def test_losses_zero_at_perfect_prediction(self):
        y = Tensor(RNG.normal(size=10))
        for fn in (mse_loss, mae_loss, huber_loss):
            assert fn(y, Tensor(y.data.copy())).item() == pytest.approx(0.0)

    def test_mse_gradient(self):
        target = Tensor(RNG.normal(size=(4,)))
        check_gradient(lambda t: mse_loss(t, target), RNG.normal(size=(4,)))

    def test_huber_gradient(self):
        target = Tensor(np.zeros(4))
        x = np.array([0.3, -0.4, 2.5, -3.0])  # both regions, away from kinks
        check_gradient(lambda t: huber_loss(t, target), x)

    def test_get_by_name(self):
        assert losses.get("mse") is mse_loss
        assert losses.get(mae_loss) is mae_loss
        with pytest.raises(ValueError):
            losses.get("nope")


def _quadratic_problem():
    """Single parameter, loss (w - 3)^2 — any optimiser should find w = 3."""
    w = Parameter(np.array([0.0]))

    def loss_fn():
        diff = w - 3.0
        return (diff * diff).sum()

    return w, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self):
        w, loss_fn = _quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        assert w.data[0] == pytest.approx(3.0, abs=1e-4)

    def test_momentum_converges(self):
        w, loss_fn = _quadratic_problem()
        opt = SGD([w], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        assert w.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_weight_decay_shrinks(self):
        w = Parameter(np.array([10.0]))
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (w * 0.0).sum().backward()
        opt.step()
        assert w.data[0] < 10.0

    def test_skips_params_without_grad(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1)
        opt.step()  # no grad — must not crash or move
        assert w.data[0] == 1.0

    def test_invalid_hyperparams(self):
        w = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            SGD([w], lr=0.0)
        with pytest.raises(ValueError):
            SGD([w], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([w], lr=0.1, weight_decay=-1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_duplicate_params_rejected(self):
        w = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            SGD([w, w], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w, loss_fn = _quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        assert w.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step is ≈ lr regardless of
        # gradient magnitude.
        w = Parameter(np.array([0.0]))
        opt = Adam([w], lr=0.01)
        opt.zero_grad()
        (w * 1000.0).sum().backward()
        opt.step()
        assert abs(w.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_fits_linear_regression(self):
        rng = np.random.default_rng(0)
        layer = Dense(2, 1, activation="linear", rng=rng)
        x = rng.normal(size=(128, 2))
        y = x @ np.array([[1.5], [-2.0]]) + 0.5
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            mse_loss(layer(Tensor(x)), Tensor(y)).backward()
            opt.step()
        assert mse_loss(layer(Tensor(x)), Tensor(y)).item() < 1e-6
        np.testing.assert_allclose(
            layer.weight.data.ravel(), [1.5, -2.0], atol=1e-2
        )

    def test_invalid_hyperparams(self):
        w = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            Adam([w], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([w], beta1=1.0)
        with pytest.raises(ValueError):
            Adam([w], eps=0.0)


class TestSerialization:
    def test_save_load_weights_roundtrip(self, tmp_path):
        model = Sequential(Dense(3, 2, rng=RNG), Dense(2, 1, rng=RNG))
        path = tmp_path / "model.npz"
        save_weights(model, path)
        other = Sequential(Dense(3, 2, rng=RNG), Dense(2, 1, rng=RNG))
        load_weights(other, path)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_non_strict_load_for_grown_model(self, tmp_path):
        small = Sequential(Dense(3, 2, rng=RNG))
        path = tmp_path / "small.npz"
        save_weights(small, path)
        grown = Sequential(Dense(3, 2, rng=RNG), Dense(2, 1, rng=RNG))
        before = grown.layers[1].weight.data.copy()
        load_weights(grown, path, strict=False)
        np.testing.assert_array_equal(
            grown.layers[0].weight.data, small.layers[0].weight.data
        )
        np.testing.assert_array_equal(grown.layers[1].weight.data, before)

    def test_save_state_creates_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "state.npz"
        save_state({"x": np.ones(3)}, path)
        state = load_state(path)
        np.testing.assert_array_equal(state["x"], np.ones(3))


class TestMinibatches:
    def test_covers_all_indices(self):
        seen = np.concatenate(list(iterate_minibatches(103, 10, shuffle=False)))
        np.testing.assert_array_equal(np.sort(seen), np.arange(103))

    def test_batch_sizes(self):
        batches = list(iterate_minibatches(103, 10, shuffle=False))
        assert [len(b) for b in batches] == [10] * 10 + [3]

    def test_drop_last(self):
        batches = list(iterate_minibatches(103, 10, shuffle=False, drop_last=True))
        assert [len(b) for b in batches] == [10] * 10

    def test_shuffle_changes_order(self):
        a = np.concatenate(list(iterate_minibatches(50, 10, rng=np.random.default_rng(1))))
        assert not np.array_equal(a, np.arange(50))
        np.testing.assert_array_equal(np.sort(a), np.arange(50))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(10, 0))
