"""Property-based tests (hypothesis) for the autograd engine.

The central invariant: for every composite expression built from our ops, the
analytic gradient matches a central finite-difference estimate.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, check_gradient
from repro.nn import functional as F


finite_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False, width=64
)


def matrices(rows, cols):
    return arrays(np.float64, (rows, cols), elements=finite_floats)


@settings(max_examples=25, deadline=None)
@given(matrices(3, 4), matrices(3, 4))
def test_addition_commutative(a, b):
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    np.testing.assert_allclose(left, right)


@settings(max_examples=25, deadline=None)
@given(matrices(2, 3), matrices(3, 2))
def test_matmul_grad_property(a, b):
    bt = Tensor(b)
    check_gradient(lambda t: (t @ bt).sum(), a, atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(matrices(3, 3))
def test_chained_expression_grad(x):
    # (x * 2 + 1)^2 averaged — polynomial, smooth everywhere.
    check_gradient(lambda t: ((t * 2.0 + 1.0) ** 2).mean(), x, atol=1e-4, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(matrices(2, 5))
def test_softmax_rows_always_simplex(x):
    out = F.softmax(Tensor(x)).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(2), atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(matrices(2, 4), matrices(2, 3))
def test_concat_preserves_values(a, b):
    out = F.concat([Tensor(a), Tensor(b)], axis=1).data
    np.testing.assert_array_equal(out[:, :4], a)
    np.testing.assert_array_equal(out[:, 4:], b)


@settings(max_examples=25, deadline=None)
@given(matrices(2, 4), matrices(2, 3))
def test_concat_grad_splits(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    F.concat([ta, tb], axis=1).sum().backward()
    np.testing.assert_array_equal(ta.grad, np.ones_like(a))
    np.testing.assert_array_equal(tb.grad, np.ones_like(b))


@settings(max_examples=25, deadline=None)
@given(matrices(4, 4))
def test_sum_then_mean_consistent(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.mean().item(), t.sum().item() / x.size, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(matrices(3, 4))
def test_exp_grad(x):
    check_gradient(lambda t: t.exp().sum(), x, atol=1e-4, rtol=1e-3)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=8))
def test_gather_rows_grad_counts(vocab, picks):
    """Gradient of sum(gather(W, ids)) counts row occurrences exactly."""
    rng = np.random.default_rng(vocab * 100 + picks)
    w = Tensor(rng.normal(size=(vocab, 3)), requires_grad=True)
    ids = rng.integers(0, vocab, size=picks)
    w.gather_rows(ids).sum().backward()
    counts = np.bincount(ids, minlength=vocab).astype(float)
    np.testing.assert_allclose(w.grad, np.repeat(counts[:, None], 3, axis=1))


@settings(max_examples=25, deadline=None)
@given(matrices(3, 5))
def test_leaky_relu_bounds(x):
    """LReL output is always between 0.001*x and x (elementwise envelope)."""
    out = F.leaky_relu(Tensor(x)).data
    np.testing.assert_allclose(out, np.maximum(0.001 * x, x))
    assert (out >= np.minimum(0.001 * x, x) - 1e-12).all()
