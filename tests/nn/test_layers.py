"""Tests for Module/Parameter discovery and the layer library."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Dropout,
    Embedding,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
)


RNG = np.random.default_rng(42)


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.first = Dense(4, 3, rng=RNG)
        self.second = Dense(3, 1, activation="linear", rng=RNG)
        self.extras = [Dense(4, 2, rng=RNG), Dense(2, 2, rng=RNG)]

    def forward(self, x):
        return self.second(self.first(x))


class TestModule:
    def test_named_parameters_paths(self):
        model = TinyModel()
        names = {name for name, _ in model.named_parameters()}
        assert "first.weight" in names
        assert "second.bias" in names
        assert "extras.0.weight" in names
        assert "extras.1.bias" in names

    def test_parameter_count(self):
        model = TinyModel()
        expected = (4 * 3 + 3) + (3 * 1 + 1) + (4 * 2 + 2) + (2 * 2 + 2)
        assert model.num_parameters() == expected

    def test_train_eval_recursive(self):
        model = Sequential(Dense(2, 2, rng=RNG), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = TinyModel()
        out = model(Tensor(RNG.normal(size=(2, 4))))
        out.sum().backward()
        assert model.first.weight.grad is not None
        model.zero_grad()
        assert model.first.weight.grad is None

    def test_state_dict_roundtrip(self):
        model = TinyModel()
        state = model.state_dict()
        other = TinyModel()
        other.load_state_dict(state)
        np.testing.assert_array_equal(other.first.weight.data, model.first.weight.data)

    def test_state_dict_is_a_copy(self):
        model = TinyModel()
        state = model.state_dict()
        state["first.weight"][:] = 0.0
        assert not (model.first.weight.data == 0).all()

    def test_load_state_dict_strict_missing(self):
        model = TinyModel()
        state = model.state_dict()
        del state["first.weight"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_strict_unexpected(self):
        model = TinyModel()
        state = model.state_dict()
        state["phantom"] = np.ones(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_non_strict_partial(self):
        model = TinyModel()
        fresh = TinyModel()
        state = {"first.weight": model.first.weight.data}
        fresh.load_state_dict(state, strict=False)
        np.testing.assert_array_equal(fresh.first.weight.data, model.first.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        model = TinyModel()
        state = model.state_dict()
        state["first.weight"] = np.ones((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestDense:
    def test_output_shape(self):
        layer = Dense(5, 7, rng=RNG)
        out = layer(Tensor(RNG.normal(size=(3, 5))))
        assert out.shape == (3, 7)

    def test_linear_activation_exact(self):
        layer = Dense(2, 1, activation="linear", rng=RNG)
        layer.weight.data = np.array([[2.0], [3.0]])
        layer.bias.data = np.array([1.0])
        out = layer(Tensor([[1.0, 1.0]]))
        np.testing.assert_allclose(out.data, [[6.0]])

    def test_lrelu_default(self):
        layer = Dense(1, 1, rng=RNG)
        layer.weight.data = np.array([[1.0]])
        layer.bias.data = np.array([0.0])
        out = layer(Tensor([[-5.0]]))
        np.testing.assert_allclose(out.data, [[-0.005]])

    def test_wrong_input_width_raises(self):
        layer = Dense(4, 2, rng=RNG)
        with pytest.raises(ValueError):
            layer(Tensor(RNG.normal(size=(3, 5))))

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            Dense(2, 2, activation="tanhh")

    def test_callable_activation(self):
        layer = Dense(2, 2, activation=lambda t: t * 0.0, rng=RNG)
        out = layer(Tensor(RNG.normal(size=(1, 2))))
        np.testing.assert_allclose(out.data, [[0.0, 0.0]])

    def test_gradients_flow_to_both_params(self):
        layer = Dense(3, 2, rng=RNG)
        layer(Tensor(RNG.normal(size=(4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert layer.bias.grad.shape == (2,)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(58, 8, rng=RNG)
        out = emb(np.array([0, 5, 57]))
        assert out.shape == (3, 8)

    def test_lookup_matches_rows(self):
        emb = Embedding(10, 4, rng=RNG)
        out = emb(np.array([3, 3, 7]))
        np.testing.assert_array_equal(out.data[0], emb.weight.data[3])
        np.testing.assert_array_equal(out.data[1], emb.weight.data[3])
        np.testing.assert_array_equal(out.data[2], emb.weight.data[7])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2, rng=RNG)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_rejects_2d_ids(self):
        emb = Embedding(5, 2, rng=RNG)
        with pytest.raises(ValueError):
            emb(np.zeros((2, 2), dtype=int))

    def test_duplicate_ids_accumulate_grads(self):
        emb = Embedding(6, 3, rng=RNG)
        emb(np.array([2, 2, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], [3.0, 3.0, 3.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0, 0.0])

    def test_distances_symmetric_zero_diagonal(self):
        emb = Embedding(7, 3, rng=RNG)
        d = emb.distances()
        assert d.shape == (7, 7)
        np.testing.assert_allclose(d, d.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(d), np.zeros(7), atol=1e-9)

    def test_distances_match_manual(self):
        emb = Embedding(4, 2, rng=RNG)
        d = emb.distances()
        w = emb.weight.data
        manual = np.linalg.norm(w[1] - w[2])
        assert d[1, 2] == pytest.approx(manual, abs=1e-9)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 3)
        with pytest.raises(ValueError):
            Embedding(3, 0)


class TestDropoutLayer:
    def test_eval_mode_identity(self):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(RNG.normal(size=(4, 4)))
        assert layer(x) is x

    def test_train_mode_drops(self):
        layer = Dropout(0.9, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        assert (out.data == 0).mean() > 0.8

    def test_reseed_reproducible(self):
        layer = Dropout(0.5)
        x = Tensor(np.ones((10, 10)))
        layer.reseed(123)
        a = layer(x).data.copy()
        layer.reseed(123)
        b = layer(x).data.copy()
        np.testing.assert_array_equal(a, b)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestContainers:
    def test_sequential_applies_in_order(self):
        model = Sequential(
            Dense(2, 3, activation="linear", rng=RNG),
            Dense(3, 1, activation="linear", rng=RNG),
        )
        out = model(Tensor(RNG.normal(size=(5, 2))))
        assert out.shape == (5, 1)

    def test_sequential_len_getitem_iter(self):
        a, b = Dense(2, 2, rng=RNG), Dense(2, 2, rng=RNG)
        model = Sequential(a, b)
        assert len(model) == 2
        assert model[0] is a
        assert list(model) == [a, b]

    def test_sequential_append(self):
        model = Sequential()
        model.append(Dense(2, 2, rng=RNG))
        assert len(model) == 1

    def test_sequential_parameters_discovered(self):
        model = Sequential(Dense(2, 3, rng=RNG), Dense(3, 1, rng=RNG))
        assert model.num_parameters() == (2 * 3 + 3) + (3 * 1 + 1)

    def test_module_list_registers_params(self):
        ml = ModuleList([Dense(2, 2, rng=RNG)])
        ml.append(Dense(2, 2, rng=RNG))
        assert len(ml) == 2
        assert sum(1 for _ in ml.parameters()) == 4

    def test_module_list_forward_raises(self):
        with pytest.raises(RuntimeError):
            ModuleList()(Tensor([1.0]))


class TestParameter:
    def test_requires_grad(self):
        assert Parameter(np.ones(3)).requires_grad
