"""Tests for the pinball (quantile) loss and risk-aware training."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Parameter,
    Tensor,
    check_gradient,
    pinball_loss,
    quantile_loss,
)


class TestPinballValues:
    def test_median_is_half_mae(self):
        pred = Tensor([1.0, 5.0])
        target = Tensor([3.0, 3.0])
        # q=0.5: 0.5*|e| averaged -> 0.5 * mean(|2|, |2|) = 1.0
        assert pinball_loss(pred, target, 0.5).item() == pytest.approx(1.0)

    def test_asymmetry(self):
        target = Tensor([0.0])
        under = pinball_loss(Tensor([-1.0]), target, 0.8)  # e = +1
        over = pinball_loss(Tensor([1.0]), target, 0.8)    # e = -1
        # q=0.8 punishes under-prediction 4x more than over-prediction.
        assert under.item() == pytest.approx(0.8)
        assert over.item() == pytest.approx(0.2)

    def test_zero_at_perfect(self):
        y = Tensor([1.0, 2.0, 3.0])
        assert pinball_loss(y, Tensor(y.data.copy()), 0.7).item() == pytest.approx(0.0)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            pinball_loss(Tensor([1.0]), Tensor([1.0]), 0.0)
        with pytest.raises(ValueError):
            quantile_loss(1.0)

    def test_gradient(self):
        rng = np.random.default_rng(0)
        target = Tensor(rng.normal(size=6))
        x = rng.normal(size=6) + 3.0  # keep errors away from zero kink
        check_gradient(lambda t: pinball_loss(t, target, 0.8), x)


class TestQuantileRegression:
    def test_constant_model_learns_the_quantile(self):
        """Minimising pinball loss with a constant predictor recovers the
        empirical quantile of the targets."""
        rng = np.random.default_rng(1)
        targets = rng.exponential(5.0, size=2000)
        for q in (0.2, 0.5, 0.8):
            w = Parameter(np.array([0.0]))
            opt = Adam([w], lr=0.3)
            loss_fn = quantile_loss(q)
            ones = Tensor(np.ones((2000, 1)))
            y = Tensor(targets)
            for _ in range(600):
                opt.zero_grad()
                pred = (ones @ w.reshape(1, 1)).reshape(-1)
                loss_fn(pred, y).backward()
                opt.step()
            expected = np.quantile(targets, q)
            assert w.data[0] == pytest.approx(expected, rel=0.1)

    def test_higher_quantile_predicts_higher(self):
        """Training DeepSD with q=0.85 yields systematically higher
        predictions than q=0.5 — the risk-aware dispatch behaviour."""
        from repro.city import simulate_city
        from repro.config import tiny_scale
        from repro.core import BasicDeepSD, Trainer, TrainingConfig
        from repro.features import FeatureBuilder

        scale = tiny_scale()
        dataset = simulate_city(scale.simulation)
        train_set, test_set = FeatureBuilder(dataset, scale.features).build()

        def train(q):
            model = BasicDeepSD(
                dataset.n_areas, scale.features.window_minutes, dropout=0.0,
                seed=0,
            )
            config = TrainingConfig(epochs=4, best_k=2, seed=0, loss=quantile_loss(q))
            trainer = Trainer(model, config)
            trainer.fit(train_set)
            return trainer.predict(test_set)

        median = train(0.5)
        p85 = train(0.85)
        assert p85.mean() > median.mean()
