"""Taped execution must be indistinguishable from module dispatch.

The tape (``repro.nn.tape``) records one forward/backward at fixed shapes
and replays it as flat preallocated numpy.  Its whole value rests on one
claim: float64 replay is *bitwise* identical to the module path — same
loss, same gradients, same optimizer trajectory, same dropout RNG stream,
same serving bits.  These tests attack that claim from every side the
trainer exercises: random shapes, dropout, losses, gradient clipping,
partial trailing batches, and the small-block inference tapes.

Float32 tapes trade the bitwise guarantee for speed; they get a tolerance
check here and a golden-file regression in ``tests/core``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EmbeddingConfig
from repro.core import AdvancedDeepSD, BasicDeepSD, InputScales, Trainer, TrainingConfig
from repro.core.batching import EpochBatches
from repro.features.builder import ExampleSet
from repro.nn.tape import ForwardTape, TapeUnsupported, TrainingTape

WINDOW = 5
N_AREAS = 4

MODELS = {"basic": BasicDeepSD, "advanced": AdvancedDeepSD}


def synthetic_set(n_items: int, seed: int) -> ExampleSet:
    """A fully deterministic ExampleSet — no simulator, millisecond-cheap."""
    rng = np.random.default_rng(seed)
    L = WINDOW

    def counts(*shape):
        return rng.poisson(3.0, size=shape).astype(np.float32)

    return ExampleSet(
        area_ids=rng.integers(0, N_AREAS, n_items),
        time_ids=rng.integers(L, 1440 - 10, n_items),
        week_ids=rng.integers(0, 7, n_items),
        day_ids=rng.integers(0, 10, n_items),
        sd_now=counts(n_items, 2 * L),
        sd_hist=counts(n_items, 7, 2 * L),
        sd_hist_next=counts(n_items, 7, 2 * L),
        lc_now=counts(n_items, 2 * L),
        lc_hist=counts(n_items, 7, 2 * L),
        lc_hist_next=counts(n_items, 7, 2 * L),
        wt_now=counts(n_items, 2 * L),
        wt_hist=counts(n_items, 7, 2 * L),
        wt_hist_next=counts(n_items, 7, 2 * L),
        weather_types=rng.integers(0, 4, (n_items, L)),
        temperature=rng.normal(0.0, 1.0, (n_items, L)).astype(np.float32),
        pm25=rng.normal(0.0, 1.0, (n_items, L)).astype(np.float32),
        traffic=counts(n_items, L, 4),
        gaps=counts(n_items),
        window=L,
        n_areas=N_AREAS,
        scalers={"temperature": (0.0, 1.0), "pm25": (0.0, 1.0)},
    )


def build_model(name: str, *, dropout: float, seed: int):
    model = MODELS[name](N_AREAS, WINDOW, EmbeddingConfig(), dropout=dropout, seed=seed)
    return model


def assert_states_identical(a, b):
    sa, sb = a.state_dict(), b.state_dict()
    assert set(sa) == set(sb)
    for key in sa:
        assert np.array_equal(sa[key], sb[key]), f"parameter {key} diverged"


# ---------------------------------------------------------------------------
# Training parity: tape on vs tape off must produce the same bits.
# ---------------------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(
    name=st.sampled_from(["basic", "advanced"]),
    n_items=st.integers(6, 20),
    batch_size=st.integers(4, 8),
    dropout=st.sampled_from([0.0, 0.3]),
    grad_clip=st.sampled_from([0.0, 1.0]),
    loss=st.sampled_from(["mse", "mae", "huber"]),
    seed=st.integers(0, 10_000),
)
def test_taped_training_bitwise_identical(
    name, n_items, batch_size, dropout, grad_clip, loss, seed
):
    """Full fit (forward, dropout, backward, clip, Adam) is bitwise equal."""
    example_set = synthetic_set(n_items, seed)
    config = TrainingConfig(
        epochs=2,
        batch_size=batch_size,
        best_k=1,
        seed=seed,
        grad_clip=grad_clip,
        loss=loss,
    )
    trainers = {}
    for taped in (False, True):
        model = build_model(name, dropout=dropout, seed=seed)
        trainer = Trainer(model, config, use_tape=taped)
        trainer.fit(example_set)
        trainers[taped] = trainer

    assert_states_identical(trainers[False].model, trainers[True].model)
    base = trainers[False].predict(example_set)
    taped = trainers[True].predict(example_set)
    assert np.array_equal(base, taped)


def test_taped_predict_matches_module_across_sizes():
    """Small-block and full-block inference tapes keep the serving bits."""
    example_set = synthetic_set(40, seed=3)
    model = build_model("basic", dropout=0.0, seed=3)
    model.input_scales = InputScales.from_example_set(example_set)
    model.eval()
    module = Trainer(model, use_tape=False)
    taped = Trainer(model, use_tape=True)
    for n in (1, 2, 3, 4, 5, 7, 8, 16, 17, 31, 32, 33, 40):
        subset = synthetic_set(n, seed=100 + n)
        assert np.array_equal(module.predict(subset), taped.predict(subset)), n


def test_training_tape_direct_step_parity():
    """TrainingTape.step binds the exact grads module backward produces."""
    from repro.nn import Tensor
    from repro.nn.losses import mse_loss

    example_set = synthetic_set(8, seed=5)
    taped_model = build_model("basic", dropout=0.2, seed=5)
    plain_model = build_model("basic", dropout=0.2, seed=5)
    taped_model.train()
    plain_model.train()

    # Build the batch the way the trainer does: every input field, full set.
    batch, targets = EpochBatches(example_set).slice(0, 8)
    tape = TrainingTape.trace(taped_model, mse_loss, batch, targets)
    taped_loss = tape.step(batch, targets)

    loss = mse_loss(plain_model(batch), Tensor(np.asarray(targets, dtype=np.float64)))
    loss.backward()

    assert taped_loss == float(loss.data)
    plain = {name: p for name, p in plain_model.named_parameters()}
    for name, param in taped_model.named_parameters():
        ref = plain[name].grad
        if ref is None:
            assert param.grad is None or not np.any(param.grad)
        else:
            assert param.grad is not None and np.array_equal(param.grad, ref), name


# ---------------------------------------------------------------------------
# ForwardTape mechanics: shape guard, padding, invalidation, float32.
# ---------------------------------------------------------------------------


def _eval_model_and_batch(n_rows=8, seed=11):
    # No input_scales here: direct ForwardTape.trace(...) leaves scale
    # folding to the caller (the trainer passes them as refill divisors),
    # so the module reference must be unscaled too.
    example_set = synthetic_set(n_rows, seed=seed)
    model = build_model("basic", dropout=0.0, seed=seed)
    model.eval()
    batch, _ = EpochBatches(example_set).slice(0, n_rows)
    return model, batch, example_set


def test_forward_tape_pads_short_batches():
    model, batch, example_set = _eval_model_and_batch()
    tape = ForwardTape.trace(model, batch, n_rows=8)
    reference = model(batch).data
    assert np.array_equal(tape.replay(batch), reference)
    # Replay a 3-row slice on the 8-row tape: stale padding rows must not
    # contaminate the live rows.
    short, _ = EpochBatches(example_set).slice(0, 3)
    assert np.array_equal(tape.replay(short), reference[:3])


def test_forward_tape_rejects_oversized_batch():
    model, batch, example_set = _eval_model_and_batch()
    tape = ForwardTape.trace(model, batch, n_rows=4)
    big, _ = EpochBatches(example_set).slice(0, 8)
    with pytest.raises(ValueError):
        tape.replay(big)


def test_forward_tape_shape_guard():
    model, batch, _ = _eval_model_and_batch()
    tape = ForwardTape.trace(model, batch)
    assert tape.matches(batch)
    narrowed = dict(batch)
    narrowed["sd_now"] = np.asarray(batch["sd_now"])[:, :-1]
    assert not tape.matches(narrowed)
    missing = dict(batch)
    del missing["sd_now"]
    assert not tape.matches(missing)


def test_forward_tape_params_bound_detects_rebinding():
    model, batch, _ = _eval_model_and_batch()
    tape = ForwardTape.trace(model, batch)
    assert tape.params_bound() and tape.is_valid(model)
    param = next(iter(model.parameters()))
    param.data = param.data.copy()  # rebind: tape now reads a dead array
    assert not tape.params_bound()
    assert not tape.is_valid(model)


def test_forward_tape_requires_eval_mode():
    model, batch, _ = _eval_model_and_batch()
    model.train()
    with pytest.raises(TapeUnsupported):
        ForwardTape.trace(model, batch)


def test_forward_tape_float32_close_and_refreshable():
    model, batch, _ = _eval_model_and_batch()
    reference = model(batch).data
    tape = ForwardTape.trace(model, batch, dtype="float32")
    out = tape.replay(batch)
    assert out.dtype == np.float32
    np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-4)
    # float32 tapes copy parameters: edits are invisible until refresh.
    param = next(iter(model.parameters()))
    param.data += 0.25
    assert tape.params_bound()  # refreshable, not identity-bound
    stale = tape.replay(batch).copy()
    tape.refresh_params()
    refreshed = tape.replay(batch)
    updated_reference = model(batch).data
    np.testing.assert_allclose(refreshed, updated_reference, rtol=1e-4, atol=1e-4)
    assert not np.array_equal(stale, refreshed)


def test_training_tape_rejected_under_batch_invariant():
    from repro.nn import batch_invariant
    from repro.nn.losses import mse_loss
    example_set = synthetic_set(8, seed=13)
    model = build_model("basic", dropout=0.0, seed=13)
    model.train()
    batch, targets = EpochBatches(example_set).slice(0, 8)
    with batch_invariant():
        with pytest.raises(TapeUnsupported):
            TrainingTape.trace(model, mse_loss, batch, targets)
