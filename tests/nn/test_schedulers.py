"""Tests for learning-rate schedules and gradient clipping."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    ConstantSchedule,
    CosineDecay,
    Parameter,
    StepDecay,
    clip_gradients,
)


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.ones(3))], lr=lr)


class TestConstantSchedule:
    def test_never_changes(self):
        opt = make_optimizer(0.05)
        schedule = ConstantSchedule(opt)
        for _ in range(20):
            assert schedule.step() == 0.05
        assert opt.lr == 0.05


class TestStepDecay:
    def test_halves_at_boundaries(self):
        opt = make_optimizer(0.1)
        schedule = StepDecay(opt, step_size=3, gamma=0.5)
        rates = [schedule.step() for _ in range(7)]
        np.testing.assert_allclose(
            rates, [0.1, 0.1, 0.05, 0.05, 0.05, 0.025, 0.025]
        )

    def test_mutates_optimizer(self):
        opt = make_optimizer(0.1)
        schedule = StepDecay(opt, step_size=1, gamma=0.1)
        schedule.step()
        assert opt.lr == pytest.approx(0.01)

    def test_validation(self):
        opt = make_optimizer()
        with pytest.raises(ValueError):
            StepDecay(opt, step_size=0)
        with pytest.raises(ValueError):
            StepDecay(opt, gamma=0.0)
        with pytest.raises(ValueError):
            StepDecay(opt, gamma=1.5)


class TestCosineDecay:
    def test_endpoints(self):
        opt = make_optimizer(0.1)
        schedule = CosineDecay(opt, total_epochs=10, min_lr=0.01)
        assert schedule.learning_rate(0) == pytest.approx(0.1)
        assert schedule.learning_rate(10) == pytest.approx(0.01)
        # Halfway: mean of the endpoints.
        assert schedule.learning_rate(5) == pytest.approx(0.055)

    def test_monotone_decreasing(self):
        opt = make_optimizer(0.1)
        schedule = CosineDecay(opt, total_epochs=20)
        rates = [schedule.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_clamped_past_horizon(self):
        opt = make_optimizer(0.1)
        schedule = CosineDecay(opt, total_epochs=5, min_lr=0.02)
        for _ in range(10):
            schedule.step()
        assert opt.lr == pytest.approx(0.02)

    def test_validation(self):
        opt = make_optimizer()
        with pytest.raises(ValueError):
            CosineDecay(opt, total_epochs=0)
        with pytest.raises(ValueError):
            CosineDecay(opt, total_epochs=5, min_lr=-1.0)


class TestClipGradients:
    def test_small_gradients_untouched(self):
        param = Parameter(np.ones(4))
        param.grad = np.full(4, 0.1)
        norm = clip_gradients([param], max_norm=10.0)
        assert norm == pytest.approx(0.2)
        np.testing.assert_allclose(param.grad, 0.1)

    def test_large_gradients_scaled(self):
        param = Parameter(np.ones(4))
        param.grad = np.full(4, 10.0)  # norm 20
        norm = clip_gradients([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_params(self):
        a = Parameter(np.ones(1))
        b = Parameter(np.ones(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        clip_gradients([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0, rel=1e-6)
        # Direction preserved: 3:4 ratio.
        assert a.grad[0] / b.grad[0] == pytest.approx(0.75)

    def test_none_grads_skipped(self):
        param = Parameter(np.ones(3))
        assert clip_gradients([param], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradients([], max_norm=0.0)


class TestTrainerIntegration:
    def test_schedule_and_clip_in_training(self):
        from repro.core import BasicDeepSD, Trainer, TrainingConfig
        from repro.city import simulate_city
        from repro.config import tiny_scale
        from repro.features import FeatureBuilder

        scale = tiny_scale()
        dataset = simulate_city(scale.simulation)
        train_set, _ = FeatureBuilder(dataset, scale.features).build()
        model = BasicDeepSD(
            dataset.n_areas, scale.features.window_minutes, dropout=0.0, seed=0
        )
        config = TrainingConfig(
            epochs=2, best_k=1, seed=0, lr_schedule="cosine", grad_clip=5.0
        )
        history = Trainer(model, config).fit(train_set)
        assert np.isfinite(history.train_loss).all()

    def test_invalid_schedule_name(self):
        from repro.core import TrainingConfig
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError):
            TrainingConfig(lr_schedule="linear")
        with pytest.raises(ConfigError):
            TrainingConfig(grad_clip=-1.0)
