"""Setup shim.

The execution environment has no ``wheel`` package and no network access, so
PEP 517 editable installs cannot build a wheel.  Keeping a ``setup.py`` (and
omitting ``[build-system]`` from pyproject.toml) lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path, which works offline.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
