#!/usr/bin/env bash
# End-to-end observability smoke test:
#   simulate → featurize → train → evaluate → interrupt/resume → bench → report
# (tiny scale).  Fails if any stage exits non-zero, logs an ERROR event,
# does not write its run manifest, if a training run resumed from a
# checkpoint diverges from the uninterrupted run, or if hot-path
# throughput regressed more than 2x against the committed BENCH_perf.json
# (skipped when the repo has no baseline yet).  Wired into tier-1 via the `smoke` pytest
# marker (tests/test_smoke_pipeline.py).
#
# Usage: scripts/smoke.sh [workdir]   (default: a fresh mktemp dir)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
LOG="$WORK/smoke.log"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

cd "$WORK"

run() {
    python -m repro "$@" --log-level debug --log-file "$LOG"
}

run simulate  --scale tiny --out city.npz
run featurize --scale tiny --city city.npz \
              --train-out train.npz --test-out test.npz
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 2 --save model.npz
run evaluate  --model basic --scale tiny --weights model.npz \
              --train train.npz --test test.npz

# Fault-injected checkpoint/resume: train 3 epochs straight, then "kill"
# an identical run after epoch 1 and resume it from its checkpoint dir.
# The resumed run must reproduce the straight run's weights bitwise.
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 3 --save model_straight.npz
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 3 --checkpoint-dir ckpt --checkpoint-every 1 \
              --stop-after 1
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 3 --checkpoint-dir ckpt --resume \
              --save model_resumed.npz

if [ ! -f ckpt/latest.json ]; then
    echo "smoke FAILED: missing ckpt/latest.json" >&2
    exit 1
fi
if ! grep -q '"resume"' model_resumed.npz.manifest.json; then
    echo "smoke FAILED: no resume provenance in model_resumed manifest" >&2
    exit 1
fi
python - <<'EOF'
import numpy as np
a = np.load("model_straight.npz")
b = np.load("model_resumed.npz")
assert set(a.files) == set(b.files), "weight keys differ"
for key in a.files:
    np.testing.assert_array_equal(a[key], b[key], err_msg=key)
print("resume equivalence ok")
EOF

for manifest in city.npz.manifest.json train.npz.manifest.json \
                model.npz.manifest.json model.npz.eval.manifest.json \
                model_resumed.npz.manifest.json; do
    if [ ! -f "$manifest" ]; then
        echo "smoke FAILED: missing manifest $manifest" >&2
        exit 1
    fi
done

# Fast canonical perf bench: writes the BENCH_perf.json schema and gates
# throughput against the committed baseline.  Also a determinism check —
# the bench compares a serial and a parallel experiment run bitwise.
run bench --scale tiny --epochs 2 --workers 2 \
          --out "$WORK/BENCH_perf.json" --baseline "$ROOT/BENCH_perf.json"
python - <<'EOF'
import json
payload = json.load(open("BENCH_perf.json"))
assert payload["schema_version"] == 1, payload
assert payload["metrics"]["experiment.identical"] == 1.0, \
    "parallel experiment run diverged from serial"
print("bench schema + determinism ok")
EOF

if grep -q "level=error" "$LOG"; then
    echo "smoke FAILED: ERROR events in $LOG:" >&2
    grep "level=error" "$LOG" >&2
    exit 1
fi

python -m repro report city.npz.manifest.json train.npz.manifest.json \
    model.npz.manifest.json model.npz.eval.manifest.json \
    model_resumed.npz.manifest.json --quiet

echo "smoke ok"
