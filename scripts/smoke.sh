#!/usr/bin/env bash
# End-to-end observability smoke test:
#   simulate → featurize → train → evaluate → report   (tiny scale)
# Fails if any stage exits non-zero, logs an ERROR event, or does not
# write its run manifest.  Wired into tier-1 via the `smoke` pytest
# marker (tests/test_smoke_pipeline.py).
#
# Usage: scripts/smoke.sh [workdir]   (default: a fresh mktemp dir)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
LOG="$WORK/smoke.log"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

cd "$WORK"

run() {
    python -m repro "$@" --log-level debug --log-file "$LOG"
}

run simulate  --scale tiny --out city.npz
run featurize --scale tiny --city city.npz \
              --train-out train.npz --test-out test.npz
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 2 --save model.npz
run evaluate  --model basic --scale tiny --weights model.npz \
              --train train.npz --test test.npz

for manifest in city.npz.manifest.json train.npz.manifest.json \
                model.npz.manifest.json model.npz.eval.manifest.json; do
    if [ ! -f "$manifest" ]; then
        echo "smoke FAILED: missing manifest $manifest" >&2
        exit 1
    fi
done

if grep -q "level=error" "$LOG"; then
    echo "smoke FAILED: ERROR events in $LOG:" >&2
    grep "level=error" "$LOG" >&2
    exit 1
fi

python -m repro report city.npz.manifest.json train.npz.manifest.json \
    model.npz.manifest.json model.npz.eval.manifest.json --quiet

echo "smoke ok"
