#!/usr/bin/env bash
# End-to-end observability smoke test:
#   simulate → featurize → train → evaluate → taped-vs-module training
#   diff → interrupt/resume → bench → scenario robustness matrix →
#   quantile-head train + risk-interval serve → traced serve round-trip
#   (/predict, /metrics scrape, clean /shutdown) → repro trace over the
#   exported span file → taped-vs---no-tape serving diff (200 queries,
#   bitwise) → 2-worker sharded fleet under loadtest (single-item +
#   batched /predict_batch legs) with a mid-load worker SIGKILL (zero
#   failed requests, supervised respawn, router batch-vs-single bitwise
#   parity, clean /shutdown) → report
# (tiny scale).  Fails if any stage exits non-zero, logs an ERROR event,
# does not write its run manifest, if a training run resumed from a
# checkpoint diverges from the uninterrupted run, if the exported trace
# is malformed or missing expected spans, or if hot-path
# throughput regressed more than 2x against the committed BENCH_perf.json
# (skipped when the repo has no baseline yet).  Wired into tier-1 via the `smoke` pytest
# marker (tests/test_smoke_pipeline.py).
#
# Usage: scripts/smoke.sh [workdir]   (default: a fresh mktemp dir)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
LOG="$WORK/smoke.log"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

cd "$WORK"

run() {
    python -m repro "$@" --log-level debug --log-file "$LOG"
}

run simulate  --scale tiny --out city.npz
run featurize --scale tiny --city city.npz \
              --train-out train.npz --test-out test.npz
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 2 --save model.npz
run evaluate  --model basic --scale tiny --weights model.npz \
              --train train.npz --test test.npz

# Execution-tape training equivalence: one epoch on the taped engine
# (the default) must write bitwise the same weights as --no-tape module
# dispatch.
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 1 --save model_tape_on.npz
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 1 --no-tape --save model_tape_off.npz
python - <<'EOF'
import numpy as np
a = np.load("model_tape_on.npz")
b = np.load("model_tape_off.npz")
assert set(a.files) == set(b.files), "weight keys differ"
for key in a.files:
    np.testing.assert_array_equal(a[key], b[key], err_msg=key)
print("taped training equivalence ok")
EOF

# Fault-injected checkpoint/resume: train 3 epochs straight, then "kill"
# an identical run after epoch 1 and resume it from its checkpoint dir.
# The resumed run must reproduce the straight run's weights bitwise.
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 3 --save model_straight.npz
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 3 --checkpoint-dir ckpt --checkpoint-every 1 \
              --stop-after 1
run train     --model basic --scale tiny --train train.npz --test test.npz \
              --epochs 3 --checkpoint-dir ckpt --resume \
              --save model_resumed.npz

if [ ! -f ckpt/latest.json ]; then
    echo "smoke FAILED: missing ckpt/latest.json" >&2
    exit 1
fi
if ! grep -q '"resume"' model_resumed.npz.manifest.json; then
    echo "smoke FAILED: no resume provenance in model_resumed manifest" >&2
    exit 1
fi
python - <<'EOF'
import numpy as np
a = np.load("model_straight.npz")
b = np.load("model_resumed.npz")
assert set(a.files) == set(b.files), "weight keys differ"
for key in a.files:
    np.testing.assert_array_equal(a[key], b[key], err_msg=key)
print("resume equivalence ok")
EOF

for manifest in city.npz.manifest.json train.npz.manifest.json \
                model.npz.manifest.json model.npz.eval.manifest.json \
                model_resumed.npz.manifest.json; do
    if [ ! -f "$manifest" ]; then
        echo "smoke FAILED: missing manifest $manifest" >&2
        exit 1
    fi
done

# Fast canonical perf bench: writes the BENCH_perf.json schema and gates
# throughput against the committed baseline.  Also a determinism check —
# the bench compares a serial and a parallel experiment run bitwise.
run bench --scale tiny --epochs 2 --workers 2 \
          --out "$WORK/BENCH_perf.json" --baseline "$ROOT/BENCH_perf.json"
python - <<'EOF'
import json
payload = json.load(open("BENCH_perf.json"))
assert payload["schema_version"] == 1, payload
assert payload["metrics"]["experiment.identical"] == 1.0, \
    "parallel experiment run diverged from serial"
print("bench schema + determinism ok")
EOF

# Robustness matrix: a small-scale scenario sweep through the parallel
# engine.  The report is asserted well-formed here and uploaded as a CI
# artifact; byte-identity across worker counts is pinned by
# tests/scenarios/.
run scenarios --scale tiny --models average,lasso \
    --packs storm,supply_shock --workers 2 --out robustness.json
python - <<'EOF'
import json
report = json.load(open("robustness.json"))
assert report["schema_version"] == 1, report
rows = report["results"]
assert {r["scenario"] for r in rows} == {"steady", "storm", "supply_shock"}
steady = [r for r in rows if r["scenario"] == "steady"]
assert steady and all(r["degradation"] == 1.0 for r in steady), rows
assert all(r["worst_case_mae"] >= r["mae"] for r in rows), rows
print(f"scenario matrix ok ({len(rows)} rows)")
EOF

# Risk-aware serving: a --quantiles training run attaches a P10/P50/P90
# head to its checkpoint; /predict on that checkpoint must return
# monotone intervals alongside the point gap.
run train --model basic --scale tiny --train train.npz --test test.npz \
    --epochs 2 --checkpoint-dir ckpt_q --quantiles
python -m repro serve --city city.npz --checkpoint ckpt_q --scale tiny \
    --port 0 --log-level debug --log-file "$LOG" > serve_q.out &
QSERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "^serving .* on http://" serve_q.out 2>/dev/null && break
    sleep 0.1
done
if ! grep -q "^serving .* on http://" serve_q.out; then
    echo "smoke FAILED: quantile serve did not start" >&2
    cat serve_q.out >&2
    kill "$QSERVE_PID" 2>/dev/null || true
    exit 1
fi
QPORT=$(head -1 serve_q.out | sed 's/.*://')
python - "$QPORT" <<'EOF'
import json, sys, urllib.request

base = f"http://127.0.0.1:{sys.argv[1]}"

def post(path, payload):
    req = urllib.request.Request(
        base + path, json.dumps(payload).encode(),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())

for i in range(20):
    status, body = post(
        "/predict", {"area": i % 6, "day": 1 + i % 9, "timeslot": 30 + 40 * i}
    )
    assert status == 200, (status, body)
    assert body["p10"] <= body["p50"] <= body["p90"], body
status, stats = 200, None
with urllib.request.urlopen(base + "/stats", timeout=30) as resp:
    stats = json.loads(resp.read())
assert stats["quantiles"] is True, stats
status, body = post("/shutdown", {})
assert status == 200 and body == {"status": "shutting down"}, (status, body)
print("quantile serving ok (20 queries, monotone intervals)")
EOF
wait "$QSERVE_PID"

# Online serving round-trip: start the HTTP service (traced) from the
# checkpoint the resume flow left behind, answer 500 live queries,
# verify every response is a 200 with a finite gap, scrape /metrics for
# Prometheus latency quantiles, then shut it down cleanly.  The trace
# exports to serve_trace.json on exit and is summarized below.
python -m repro serve --city city.npz --checkpoint ckpt --scale tiny \
    --port 0 --log-level debug --log-file "$LOG" \
    --trace-file serve_trace.json > serve.out &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "^serving .* on http://" serve.out 2>/dev/null && break
    sleep 0.1
done
if ! grep -q "^serving .* on http://" serve.out; then
    echo "smoke FAILED: serve did not start" >&2
    cat serve.out >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
PORT=$(head -1 serve.out | sed 's/.*://')
python - "$PORT" <<'EOF'
import json, math, sys, urllib.request

base = f"http://127.0.0.1:{sys.argv[1]}"

def post(path, payload):
    req = urllib.request.Request(
        base + path, json.dumps(payload).encode(),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())

queries = [
    (area, day, 30 + 13 * (i % 100))
    for i, (area, day) in enumerate(
        (i % 6, 1 + i % 9) for i in range(500)
    )
]
for area, day, slot in queries:
    status, body = post("/predict", {"area": area, "day": day, "timeslot": slot})
    assert status == 200, (status, body)
    assert math.isfinite(body["gap"]), body
status, stats = 200, None
with urllib.request.urlopen(base + "/stats", timeout=30) as resp:
    stats = json.loads(resp.read())
assert stats["cache"]["hits"] + stats["cache"]["misses"] >= 500, stats

# Live metrics plane: the Prometheus scrape must carry the request
# counter and the latency-quantile summary in text exposition format.
with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
    assert resp.status == 200, resp.status
    assert resp.headers["Content-Type"].startswith("text/plain"), \
        resp.headers["Content-Type"]
    metrics = resp.read().decode()
for needle in (
    "# TYPE repro_serving_requests counter",
    "# TYPE repro_serving_request_seconds summary",
    'repro_serving_request_seconds{quantile="0.99"}',
    "repro_serving_request_seconds_count",
):
    assert needle in metrics, f"missing from /metrics: {needle}"

status, body = post("/shutdown", {})
assert status == 200, (status, body)
assert body == {"status": "shutting down"}, body
print(f"serving round-trip ok ({len(queries)} queries, "
      f"{stats['cache']['hits']} cache hits, /metrics scrape ok)")
EOF
wait "$SERVE_PID"
if [ ! -f ckpt.serve.manifest.json ]; then
    echo "smoke FAILED: missing serve manifest" >&2
    exit 1
fi

# The traced serve must have exported a well-formed Chrome trace with a
# complete span tree per request; `repro trace` both validates the file
# (malformed events are a hard error) and prints the percentile table.
if [ ! -f serve_trace.json ]; then
    echo "smoke FAILED: serve did not export serve_trace.json" >&2
    exit 1
fi
python -m repro trace serve_trace.json --quiet > trace_summary.out
for span in http.handle serving.predict batcher.batch p95_ms; do
    if ! grep -q "$span" trace_summary.out; then
        echo "smoke FAILED: '$span' missing from repro trace summary:" >&2
        cat trace_summary.out >&2
        exit 1
    fi
done

# Execution-tape serving equivalence: the same 200 queries served with
# the tape on (default) and with --no-tape must match bit for bit.
for mode in tape_on tape_off; do
    EXTRA=""
    [ "$mode" = tape_off ] && EXTRA="--no-tape"
    python -m repro serve --city city.npz --checkpoint ckpt --scale tiny \
        --port 0 --log-level debug --log-file "$LOG" $EXTRA \
        > "serve_$mode.out" &
    TAPE_PID=$!
    for _ in $(seq 1 100); do
        grep -q "^serving .* on http://" "serve_$mode.out" 2>/dev/null && break
        sleep 0.1
    done
    if ! grep -q "^serving .* on http://" "serve_$mode.out"; then
        echo "smoke FAILED: serve ($mode) did not start" >&2
        cat "serve_$mode.out" >&2
        kill "$TAPE_PID" 2>/dev/null || true
        exit 1
    fi
    TAPE_PORT=$(head -1 "serve_$mode.out" | sed 's/.*://')
    python - "$TAPE_PORT" "gaps_$mode.json" <<'EOF'
import json, sys, urllib.request

base = f"http://127.0.0.1:{sys.argv[1]}"

def post(path, payload):
    req = urllib.request.Request(
        base + path, json.dumps(payload).encode(),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())

gaps = []
for i in range(200):
    area, day, slot = i % 6, 1 + i % 9, 30 + 13 * (i % 100)
    status, body = post("/predict", {"area": area, "day": day, "timeslot": slot})
    assert status == 200, (status, body)
    gaps.append(body["gap"])
with open(sys.argv[2], "w") as handle:
    json.dump(gaps, handle)
status, body = post("/shutdown", {})
assert status == 200 and body == {"status": "shutting down"}, (status, body)
EOF
    wait "$TAPE_PID"
done
python - <<'EOF'
import json
taped = json.load(open("gaps_tape_on.json"))
untaped = json.load(open("gaps_tape_off.json"))
assert taped == untaped, "taped serving diverged from --no-tape serving"
print(f"taped serving equivalence ok ({len(taped)} queries, bitwise)")
EOF

# Sharded fleet under fire: two supervised workers behind a router,
# driven by a short mixed loadtest while one worker is SIGKILLed
# mid-load.  The run must see zero failed requests (router retry +
# journal replay), the supervisor must respawn the worker, and the
# fleet must acknowledge a clean /shutdown.
python -m repro serve --city city.npz --checkpoint ckpt --scale tiny \
    --workers 2 --shard-by area-slot --port 0 --fleet-run-dir fleet_run \
    --log-level debug --log-file "$LOG" > fleet.out &
FLEET_PID=$!
for _ in $(seq 1 300); do
    grep -q "^serving fleet" fleet.out 2>/dev/null && break
    sleep 0.1
done
if ! grep -q "^serving fleet" fleet.out; then
    echo "smoke FAILED: fleet did not start" >&2
    cat fleet.out fleet_run/*.err >&2 2>/dev/null
    kill "$FLEET_PID" 2>/dev/null || true
    exit 1
fi
FLEET_PORT=$(head -1 fleet.out | sed 's/.*://')
WORKER_PID=$(pgrep -f "fleet_run/worker-0.manifest.json" | head -1)
if [ -z "$WORKER_PID" ]; then
    echo "smoke FAILED: could not find fleet worker 0 pid" >&2
    exit 1
fi
( sleep 1; kill -9 "$WORKER_PID" 2>/dev/null || true ) &
KILLER_PID=$!
# Exits 1 if any of the 400 concurrent requests fails — the kill must
# cost latency, never a request.  --batch 32 adds a second leg that
# folds the same stream into /predict_batch wire calls (recorded as
# serving.fleet.batch.*) plus a bitwise batch-vs-single cross-check
# (serving.batch.identical must be 1.0 or loadtest exits 1).
run loadtest --url "http://127.0.0.1:$FLEET_PORT" --scale tiny \
    --requests 400 --concurrency 4 --observe-fraction 0.2 \
    --batch 32 --bench-out fleet_bench.json
wait "$KILLER_PID"

# Batch transport parity through the router: one /predict_batch call
# spanning both shards must answer bitwise what per-item /predict says
# for every item (JSON round-trips doubles exactly, so == is bitwise).
python - "$FLEET_PORT" <<'EOF'
import json, sys, urllib.request

base = f"http://127.0.0.1:{sys.argv[1]}"

def post(path, payload):
    req = urllib.request.Request(
        base + path, json.dumps(payload).encode(),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return resp.status, json.loads(resp.read())

items = [
    {"area": i % 6, "day": 1 + i % 9, "timeslot": 30 + 17 * i}
    for i in range(48)
]
status, batch = post("/predict_batch", {"items": items})
assert status == 200, (status, batch)
assert batch["count"] == len(items), batch
for item, got in zip(items, batch["results"]):
    status, single = post("/predict", item)
    assert status == 200, (status, single)
    assert single["gap"] == got["gap"], (item, single, got)
    assert single["version"] == got["version"], (item, single, got)
print(f"router batch parity ok ({len(items)} items, bitwise)")
EOF
python - "$FLEET_PORT" <<'EOF'
import json, sys, time, urllib.request

base = f"http://127.0.0.1:{sys.argv[1]}"
deadline = time.monotonic() + 60
while True:
    with urllib.request.urlopen(base + "/stats", timeout=30) as resp:
        stats = json.loads(resp.read())
    fleet = stats["fleet"]
    if fleet["respawns"] >= 1 and all(w["ready"] for w in stats["workers"]):
        break
    assert time.monotonic() < deadline, f"no respawn within 60s: {stats}"
    time.sleep(0.5)
assert fleet["workers"] == 2, stats

bench = json.load(open("fleet_bench.json"))["metrics"]
assert bench["serving.fleet.errors"] == 0.0, bench
assert bench["serving.fleet.requests"] == 400.0, bench
assert bench["serving.fleet.items_per_sec"] > 0, bench
assert bench["serving.fleet.batch.errors"] == 0.0, bench
assert bench["serving.fleet.batch.items"] == 400.0, bench
assert bench["serving.fleet.batch.items_per_sec"] > 0, bench
assert bench["serving.batch.identical"] == 1.0, bench

req = urllib.request.Request(base + "/shutdown", b"{}",
                             {"Content-Type": "application/json"})
with urllib.request.urlopen(req, timeout=30) as resp:
    assert resp.status == 200
    assert json.loads(resp.read()) == {"status": "shutting down"}
print(f"fleet ok (400 loadtest requests, 0 errors, "
      f"{fleet['respawns']} respawn(s) after SIGKILL)")
EOF
wait "$FLEET_PID"

if grep -q "level=error" "$LOG"; then
    echo "smoke FAILED: ERROR events in $LOG:" >&2
    grep "level=error" "$LOG" >&2
    exit 1
fi

python -m repro report city.npz.manifest.json train.npz.manifest.json \
    model.npz.manifest.json model.npz.eval.manifest.json \
    model_resumed.npz.manifest.json --quiet

echo "smoke ok"
